"""Command-line interface: ``repro <command>``.

Commands mirror the paper's tool flow:

``gen``
    emit a gate-level GF(2^m) multiplier netlist for a given P(x);
``extract``
    reverse engineer P(x) from a netlist file (Algorithm 2);
``audit``
    extract + verify against the golden model + full report;
``synth``
    optimize/technology-map a netlist (the Table III flow);
``diagnose``
    full triage of an unknown netlist (verified multiplier / buggy /
    wrong basis / malformed), with a counterexample when one exists;
``inject``
    write a single-fault mutant of a netlist (for screening demos);
``reduction``
    print the Figure-1 reduction table and XOR cost for a P(x);
``search``
    list irreducible trinomials/pentanomials of a degree;
``batch``
    audit a directory (or manifest) of netlists through the cached,
    checkpointed campaign runner, emitting a JSONL report;
``serve``
    run the HTTP verification API (:mod:`repro.service.api`);
``cache``
    inspect (``stats``), evict down to an entry and/or byte budget
    (``prune``, oldest-mtime-first; see ``REPRO_CACHE_MAX_ENTRIES``
    and ``REPRO_CACHE_MAX_BYTES``) or empty (``clear``) the
    content-addressed result cache (``REPRO_CACHE_DIR``, default
    ``~/.cache/repro``) — which also holds the engines' compiled
    programs (``stats`` reports them as the ``compiled`` kind);
``trace``
    render a JSONL trace file (written by ``--trace``) as a span tree
    with per-phase wall/CPU times and the merged counters/gauges/
    histograms; ``--profile`` aggregates per span name (count,
    total/self wall, percentiles, critical path), ``--json`` emits
    the aggregate for scripting, and ``repro trace diff BASE CURRENT
    [--check --policy P.json]`` compares two traces host-normalized
    by their calibration spans — the CI perf-regression guard.

The workload commands (``extract``/``audit``/``diagnose``/``batch``/
``serve``) accept ``--trace out.jsonl``: every telemetry span
(compile, sweep rounds, cancellation, cache traffic, HTTP requests)
is streamed to the file as it closes — see :mod:`repro.telemetry`
and the README's Observability section.

The ``--engine`` choices come from the backend registry
(:mod:`repro.engine`): ``reference`` (the oracle), ``bitpack``
(interned bitmask monomials), ``aig`` (cut-based rewriting over the
strashed AIG), ``vector`` (numpy bitslice rewriting over uint64 mask
matrices) and ``cuda`` (the same fused sweep through cupy on a GPU).
Every registered engine parses; selecting one whose dependency is
missing fails with the registry's recorded reason (e.g. "cupy is not
installed"), not a bare "unknown engine".

``--max-ram BYTES`` (workload commands, with K/M/G/T suffixes) caps
the fused sweep's live bit-matrix: past the budget the ``vector``
engine spills to on-disk tag-range shards and streams the sweep out
of core — bit-identical results, bounded resident set.  See the
README's "Past the memory wall" section.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.xor_count import figure1_report
from repro.engine import DEFAULT_ENGINE, registered_engines
from repro.engine.spill import parse_byte_size
from repro.extract.extractor import extract_irreducible_polynomial
from repro.extract.report import format_extraction_report
from repro.extract.verify import verify_multiplier
from repro.fieldmath.bitpoly import bitpoly_parse, bitpoly_str
from repro.fieldmath.irreducible import (
    find_irreducible_pentanomials,
    find_irreducible_trinomials,
    is_irreducible,
)
from repro.extract.diagnose import diagnose
from repro.gen.faults import flip_gate, random_fault, stuck_at, swap_input
from repro.gen.digit_serial import generate_digit_serial
from repro.gen.interleaved import generate_interleaved
from repro.gen.karatsuba import generate_karatsuba
from repro.gen.mastrovito import generate_mastrovito
from repro.gen.montgomery import generate_montgomery
from repro.gen.normal_basis import generate_massey_omura
from repro.gen.schoolbook import generate_schoolbook
from repro.netlist.blif_io import read_blif, write_blif
from repro.netlist.eqn_io import read_eqn, write_eqn
from repro.netlist.verilog_io import read_verilog, write_verilog
from repro.synth.pipeline import synthesize

_GENERATORS = {
    "mastrovito": generate_mastrovito,
    "montgomery": generate_montgomery,
    "schoolbook": generate_schoolbook,
    "karatsuba": generate_karatsuba,
    "interleaved": generate_interleaved,
    "interleaved-lsb": lambda modulus: generate_interleaved(
        modulus, msb_first=False
    ),
    "digit-serial": generate_digit_serial,
    "massey-omura": generate_massey_omura,
}

_WRITERS = {"eqn": write_eqn, "blif": write_blif, "v": write_verilog}
_READERS = {"eqn": read_eqn, "blif": read_blif, "v": read_verilog}


def _add_engine_argument(parser: argparse.ArgumentParser) -> None:
    # Choices come from *registered* engines, not just the currently
    # usable ones: "--engine cuda" on a box without cupy should parse
    # and then fail with the registry's recorded reason ("cupy is not
    # installed ..."), which is actionable — a choices error is not.
    parser.add_argument(
        "--engine",
        choices=sorted(registered_engines()),
        default=DEFAULT_ENGINE,
        help=(
            "rewriting backend: %(choices)s (default: %(default)s; "
            "'vector' needs numpy, 'cuda' needs cupy + a CUDA device — "
            "selecting an unavailable engine reports why)"
        ),
    )


def _byte_size(text: str) -> int:
    """argparse type for --max-ram: '512M', '2G', plain bytes, ..."""
    try:
        return parse_byte_size(text)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error))


def _add_max_ram_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--max-ram",
        metavar="BYTES",
        type=_byte_size,
        default=None,
        help=(
            "byte budget for the fused sweep's live bit-matrix "
            "(suffixes K/M/G/T; e.g. 512M).  Past the budget the "
            "vector engine spills to on-disk shards and streams the "
            "sweep out of core — results stay bit-identical.  "
            "Default: REPRO_SWEEP_MAX_BYTES, else unlimited"
        ),
    )


def _add_fused_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--fused",
        action="store_true",
        help=(
            "rewrite all output cones in one fused substitution sweep "
            "(single process, amortizes the netlist walk and the GF(2) "
            "cancellation over every bit; fastest with --engine "
            "vector, other engines fall back to their per-bit loop; "
            "results are bit-identical either way)"
        ),
    )


def _add_fallback_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--fallback",
        action="store_true",
        help=(
            "degrade gracefully instead of failing: when the selected "
            "engine is unavailable (or dies at runtime) walk the "
            "fallback ladder cuda -> vector -> aig -> bitpack -> "
            "reference to the first usable backend (results are "
            "bit-identical; the substitution is reported)"
        ),
    )


def _add_trace_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        metavar="OUT.JSONL",
        default=None,
        help=(
            "stream telemetry spans/counters to this JSONL file "
            "(hierarchical compile/sweep/cancel/cache/request spans "
            "with wall+CPU times; render it with 'repro trace')"
        ),
    )


def _add_baseline_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--baseline",
        metavar="NETLIST",
        default=None,
        help=(
            "verified baseline version of this netlist: diff per-output-"
            "cone fingerprints and re-verify only the cones the edit "
            "touched, reusing the rest from the result cache "
            "(see 'repro eco')"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result cache for --baseline runs (override REPRO_CACHE_DIR)",
    )


def _infer_format(path: str, explicit: Optional[str]) -> str:
    if explicit:
        return explicit
    for ext, name in ((".eqn", "eqn"), (".blif", "blif"), (".v", "v")):
        if path.endswith(ext):
            return name
    raise SystemExit(
        f"cannot infer netlist format of {path!r}; pass --format"
    )


def _cmd_gen(args: argparse.Namespace) -> int:
    modulus = bitpoly_parse(args.p)
    if not is_irreducible(modulus):
        print(
            f"warning: {bitpoly_str(modulus)} is reducible; the netlist "
            "will not implement a field multiplier",
            file=sys.stderr,
        )
    netlist = _GENERATORS[args.algorithm](modulus)
    if args.synthesize:
        netlist = synthesize(netlist)
    fmt = _infer_format(args.output, args.format)
    _WRITERS[fmt](netlist, args.output)
    stats = netlist.stats()
    print(
        f"wrote {args.output}: GF(2^{len(netlist.outputs)}) "
        f"{args.algorithm}, {stats.num_equations} equations"
    )
    return 0


def _run_eco(
    args: argparse.Namespace,
    baseline: str,
    edited: str,
    audit: bool,
) -> int:
    from repro.service.cache import ResultCache
    from repro.service.eco import EcoError, eco_reverify

    cache = ResultCache(getattr(args, "cache_dir", None))
    try:
        report = eco_reverify(
            baseline,
            edited,
            cache,
            engine=args.engine,
            jobs=args.jobs,
            term_limit=args.term_limit,
            fused=args.fused,
            max_bytes=args.max_ram,
            audit=audit,
            diagnose_on_failure=(
                audit and not getattr(args, "no_diagnose", False)
            ),
        )
    except EcoError as error:
        raise SystemExit(str(error))
    print(report.render())
    return 0 if report.ok else 1


def _cmd_eco(args: argparse.Namespace) -> int:
    return _run_eco(
        args, args.baseline, args.edited, audit=not args.no_audit
    )


def _cmd_extract(args: argparse.Namespace) -> int:
    if args.baseline is not None:
        # Incremental path: diff output-cone fingerprints against the
        # verified baseline and rewrite only the dirty cones.
        return _run_eco(args, args.baseline, args.netlist, audit=False)
    fmt = _infer_format(args.netlist, args.format)
    netlist = _READERS[fmt](args.netlist)
    result = extract_irreducible_polynomial(
        netlist,
        jobs=args.jobs,
        term_limit=args.term_limit,
        engine=args.engine,
        fused=args.fused,
        max_bytes=args.max_ram,
    )
    print(f"P(x) = {result.polynomial_str}")
    if not result.irreducible:
        print("warning: extracted polynomial is NOT irreducible")
        return 1
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    if args.baseline is not None:
        return _run_eco(args, args.baseline, args.netlist, audit=True)
    fmt = _infer_format(args.netlist, args.format)
    netlist = _READERS[fmt](args.netlist)
    result = extract_irreducible_polynomial(
        netlist,
        jobs=args.jobs,
        term_limit=args.term_limit,
        measure_memory=args.jobs == 1,
        engine=args.engine,
        fused=args.fused,
        max_bytes=args.max_ram,
    )
    verification = verify_multiplier(netlist, result, engine=args.engine)
    print(
        format_extraction_report(
            result, verification, netlist_gates=len(netlist)
        )
    )
    return 0 if verification.equivalent else 1


def _cmd_synth(args: argparse.Namespace) -> int:
    in_fmt = _infer_format(args.netlist, args.format)
    netlist = _READERS[in_fmt](args.netlist)
    optimized = synthesize(
        netlist,
        map_cells=not args.no_map,
        use_xor_cells=not args.nand_only,
        ir=args.ir,
    )
    out_fmt = _infer_format(args.output, args.format)
    _WRITERS[out_fmt](optimized, args.output)
    print(
        f"synthesized {args.netlist}: {len(netlist)} -> "
        f"{len(optimized)} gates"
    )
    return 0


def _cmd_diagnose(args: argparse.Namespace) -> int:
    fmt = _infer_format(args.netlist, args.format)
    netlist = _READERS[fmt](args.netlist)
    diagnosis = diagnose(
        netlist,
        jobs=args.jobs,
        term_limit=args.term_limit,
        find_counterexample=not args.no_counterexample,
        engine=args.engine,
        fused=args.fused,
        max_bytes=args.max_ram,
    )
    print(diagnosis.render())
    return 0 if diagnosis.is_clean else 1


def _cmd_inject(args: argparse.Namespace) -> int:
    fmt = _infer_format(args.netlist, args.format)
    netlist = _READERS[fmt](args.netlist)
    if args.kind == "random":
        mutant, fault = random_fault(netlist, seed=args.seed)
    elif args.gate is None:
        raise SystemExit(f"--gate is required for --kind {args.kind}")
    elif args.kind == "gate-flip":
        mutant, fault = flip_gate(netlist, args.gate, seed=args.seed)
    elif args.kind == "input-swap":
        mutant, fault = swap_input(netlist, args.gate, seed=args.seed)
    elif args.kind == "stuck-at-0":
        mutant, fault = stuck_at(netlist, args.gate, 0)
    else:  # stuck-at-1
        mutant, fault = stuck_at(netlist, args.gate, 1)
    out_fmt = _infer_format(args.output, args.format)
    _WRITERS[out_fmt](mutant, args.output)
    print(f"injected {fault}")
    print(f"wrote {args.output}")
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.service.runner import CampaignError, run_campaign

    try:
        report = run_campaign(
            args.target,
            report_path=args.output,
            mode=args.mode,
            engine=args.engine,
            jobs=args.jobs,
            workers=args.workers,
            term_limit=args.term_limit,
            cache_dir=args.cache_dir,
            use_cache=not args.no_cache,
            checkpoint=not args.no_checkpoint,
            fused=args.fused,
            max_bytes=args.max_ram,
            retries=args.retries,
            deadline_s=args.deadline,
            max_rss_bytes=args.max_rss,
            fallback=args.fallback,
        )
    except CampaignError as error:
        raise SystemExit(str(error))
    print(report.summary())
    for name in report.failing:
        print(f"  FAILING: {name}", file=sys.stderr)
    return 0 if not report.failing else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.api import serve

    server = serve(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        engine=args.engine,
        jobs=args.jobs,
        worker_threads=args.worker_threads,
        max_queue=args.max_queue,
        retries=args.retries,
        fallback=args.fallback,
    )
    host, port = server.address
    print(f"repro service listening on http://{host}:{port}/v1/health")
    print(f"cache: {server.cache.root}  engine: {server.engine}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
        server.shutdown()
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.service.cache import ResultCache

    cache = ResultCache(
        args.cache_dir,
        max_entries=args.max_entries,
        max_bytes=args.max_bytes,
    )
    if args.action == "stats":
        print(cache.stats())
    elif args.action == "prune":
        # Explicit --max-entries/--max-bytes go straight to prune() so
        # that 0 means "drop every artifact entry", as prune()
        # documents; the constructor's budgets (env-derived) treat 0
        # as "unbounded".
        entry_budget = args.max_entries
        if entry_budget is None:
            entry_budget = cache.max_entries
        byte_budget = args.max_bytes
        if byte_budget is None:
            byte_budget = cache.max_bytes
        if entry_budget is None and byte_budget is None:
            raise SystemExit(
                "no budget: pass --max-entries/--max-bytes or set "
                "REPRO_CACHE_MAX_ENTRIES/REPRO_CACHE_MAX_BYTES"
            )
        removed = cache.prune(
            max_entries=entry_budget, max_bytes=byte_budget
        )
        budgets = []
        if entry_budget is not None:
            budgets.append(f"{entry_budget} entries")
        if byte_budget is not None:
            budgets.append(f"{byte_budget} bytes")
        print(
            f"pruned {removed} cached entries from {cache.root} "
            f"(budget {', '.join(budgets)})"
        )
    else:  # clear
        removed = cache.clear()
        print(f"cleared {removed} cached entries from {cache.root}")
    return 0


def _print_pipe_safe(text: str) -> None:
    try:
        print(text)
    except BrokenPipeError:  # e.g. piped into head; not an error
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())


def _load_policy(path: Optional[str]) -> Optional[dict]:
    if path is None:
        return None
    import json

    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from repro.telemetry import load_trace, render_trace
    from repro.telemetry import analyze

    if args.args[0] == "diff":
        if len(args.args) != 3:
            raise SystemExit("usage: repro trace diff BASE CURRENT")
        base_path, current_path = args.args[1], args.args[2]
        base = load_trace(base_path)
        current = load_trace(current_path)
        if not base or not current:
            empty = base_path if not base else current_path
            print(f"no trace events in {empty}", file=sys.stderr)
            return 1
        report = analyze.diff_traces(
            base, current, policy=_load_policy(args.policy)
        )
        if args.as_json:
            _print_pipe_safe(json.dumps(report, indent=2, sort_keys=True))
        else:
            _print_pipe_safe(analyze.format_diff(report))
        return 0 if report["ok"] or not args.check else 1

    if len(args.args) != 1:
        raise SystemExit("usage: repro trace FILE | repro trace diff A B")
    events = load_trace(args.args[0])
    if not events:
        print(f"no trace events in {args.args[0]}", file=sys.stderr)
        return 1
    failures = []
    if args.check:
        failures = analyze.check_trace(
            events, policy=_load_policy(args.policy)
        )
    if args.profile or args.as_json:
        profile = analyze.profile_trace(events)
        path = analyze.critical_path(events)
        if args.as_json:
            payload = {"profile": profile, "critical_path": path}
            if args.check:
                payload["failures"] = failures
                payload["ok"] = not failures
            _print_pipe_safe(json.dumps(payload, indent=2, sort_keys=True))
        else:
            _print_pipe_safe(analyze.format_profile(profile, path))
    else:
        _print_pipe_safe(render_trace(events))
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_reduction(args: argparse.Namespace) -> int:
    moduli = [bitpoly_parse(text) for text in args.p]
    print(figure1_report(moduli))
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    trinomials = find_irreducible_trinomials(args.m, limit=args.limit)
    if trinomials:
        print(f"irreducible trinomials of degree {args.m}:")
        for poly in trinomials:
            print(f"  {bitpoly_str(poly)}")
    else:
        print(f"no irreducible trinomials of degree {args.m}")
    pentanomials = find_irreducible_pentanomials(args.m, limit=args.limit)
    print(f"first irreducible pentanomials of degree {args.m}:")
    for poly in pentanomials:
        print(f"  {bitpoly_str(poly)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reverse engineering of irreducible polynomials in GF(2^m) "
            "arithmetic (DATE 2017 reproduction)"
        ),
    )
    from repro import __version__

    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {__version__}",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("gen", help="generate a multiplier netlist")
    gen.add_argument("--p", required=True, help='P(x), e.g. "x^4+x+1"')
    gen.add_argument(
        "--algorithm",
        choices=sorted(_GENERATORS),
        default="mastrovito",
    )
    gen.add_argument("--synthesize", action="store_true")
    gen.add_argument("--format", choices=sorted(_WRITERS), default=None)
    gen.add_argument("-o", "--output", required=True)
    gen.set_defaults(func=_cmd_gen)

    extract = sub.add_parser("extract", help="recover P(x) from a netlist")
    extract.add_argument("netlist")
    extract.add_argument("--jobs", type=int, default=1)
    extract.add_argument("--term-limit", type=int, default=None)
    extract.add_argument("--format", choices=sorted(_READERS), default=None)
    _add_baseline_arguments(extract)
    _add_fallback_argument(extract)
    _add_engine_argument(extract)
    _add_fused_argument(extract)
    _add_max_ram_argument(extract)
    _add_trace_argument(extract)
    extract.set_defaults(func=_cmd_extract)

    audit = sub.add_parser(
        "audit", help="extract P(x), verify, print a full report"
    )
    audit.add_argument("netlist")
    audit.add_argument("--jobs", type=int, default=1)
    audit.add_argument("--term-limit", type=int, default=None)
    audit.add_argument("--format", choices=sorted(_READERS), default=None)
    _add_baseline_arguments(audit)
    _add_fallback_argument(audit)
    _add_engine_argument(audit)
    _add_fused_argument(audit)
    _add_max_ram_argument(audit)
    _add_trace_argument(audit)
    audit.set_defaults(func=_cmd_audit)

    eco = sub.add_parser(
        "eco",
        help=(
            "incrementally re-audit an edited netlist against its "
            "verified baseline (dirty output cones only)"
        ),
    )
    eco.add_argument("baseline", help="the previously verified version")
    eco.add_argument("edited", help="the post-ECO version to re-audit")
    eco.add_argument("--jobs", type=int, default=1)
    eco.add_argument("--term-limit", type=int, default=None)
    eco.add_argument(
        "--cache-dir", default=None, help="override REPRO_CACHE_DIR"
    )
    eco.add_argument(
        "--no-audit",
        action="store_true",
        help="extract P(x) only; skip the golden-model verification",
    )
    eco.add_argument(
        "--no-diagnose",
        action="store_true",
        help="on an audit failure, skip the full diagnose pass",
    )
    _add_fallback_argument(eco)
    _add_engine_argument(eco)
    _add_fused_argument(eco)
    _add_max_ram_argument(eco)
    _add_trace_argument(eco)
    eco.set_defaults(func=_cmd_eco)

    synth = sub.add_parser("synth", help="optimize/map a netlist")
    synth.add_argument("netlist")
    synth.add_argument("-o", "--output", required=True)
    synth.add_argument("--no-map", action="store_true")
    synth.add_argument("--nand-only", action="store_true")
    synth.add_argument(
        "--ir",
        choices=["aig", "netlist"],
        default="aig",
        help=(
            "optimization IR: hash-consed AIG passes (default) or the "
            "legacy gate-level passes"
        ),
    )
    synth.add_argument("--format", choices=sorted(_READERS), default=None)
    synth.set_defaults(func=_cmd_synth)

    diag = sub.add_parser(
        "diagnose", help="triage an unknown netlist (full decision tree)"
    )
    diag.add_argument("netlist")
    diag.add_argument("--jobs", type=int, default=1)
    diag.add_argument("--term-limit", type=int, default=None)
    diag.add_argument("--no-counterexample", action="store_true")
    diag.add_argument("--format", choices=sorted(_READERS), default=None)
    _add_fallback_argument(diag)
    _add_engine_argument(diag)
    _add_fused_argument(diag)
    _add_max_ram_argument(diag)
    _add_trace_argument(diag)
    diag.set_defaults(func=_cmd_diagnose)

    inject = sub.add_parser(
        "inject", help="write a single-fault mutant of a netlist"
    )
    inject.add_argument("netlist")
    inject.add_argument(
        "--kind",
        choices=[
            "random", "gate-flip", "input-swap", "stuck-at-0", "stuck-at-1",
        ],
        default="random",
    )
    inject.add_argument("--gate", default=None, help="target gate output net")
    inject.add_argument("--seed", type=int, default=0)
    inject.add_argument("-o", "--output", required=True)
    inject.add_argument("--format", choices=sorted(_READERS), default=None)
    inject.set_defaults(func=_cmd_inject)

    reduction = sub.add_parser(
        "reduction", help="print Figure-1 reduction tables"
    )
    reduction.add_argument("--p", action="append", required=True)
    reduction.set_defaults(func=_cmd_reduction)

    search = sub.add_parser(
        "search", help="find irreducible tri/pentanomials"
    )
    search.add_argument("--m", type=int, required=True)
    search.add_argument("--limit", type=int, default=4)
    search.set_defaults(func=_cmd_search)

    batch = sub.add_parser(
        "batch",
        help="audit a directory/manifest of netlists (cached, resumable)",
    )
    batch.add_argument(
        "target", help="directory, manifest file, or single netlist"
    )
    batch.add_argument(
        "-o",
        "--output",
        default="batch_report.jsonl",
        help="JSONL report path (default: %(default)s)",
    )
    batch.add_argument(
        "--mode",
        choices=["extract", "audit", "diagnose"],
        default="audit",
    )
    batch.add_argument(
        "--jobs", type=int, default=1, help="per-netlist bit shards"
    )
    batch.add_argument(
        "--workers", type=int, default=1, help="concurrent netlists"
    )
    batch.add_argument("--term-limit", type=int, default=None)
    batch.add_argument(
        "--cache-dir", default=None, help="override REPRO_CACHE_DIR"
    )
    batch.add_argument(
        "--no-cache", action="store_true", help="bypass the result cache"
    )
    batch.add_argument(
        "--no-checkpoint",
        action="store_true",
        help="disable mid-extraction checkpoints",
    )
    batch.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help=(
            "per-netlist attempt budget for transient failures "
            "(crashed workers, IO errors); exhausted budgets land in "
            "the report as quarantined/worker_died records instead of "
            "aborting the campaign (default: 3 attempts)"
        ),
    )
    batch.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "wall-clock budget per netlist; a netlist past it is "
            "quarantined (recorded, campaign continues)"
        ),
    )
    batch.add_argument(
        "--max-rss",
        metavar="BYTES",
        type=_byte_size,
        default=None,
        help=(
            "RSS budget per worker (suffixes K/M/G/T); a netlist "
            "whose extraction exceeds it is quarantined"
        ),
    )
    _add_fallback_argument(batch)
    _add_engine_argument(batch)
    _add_fused_argument(batch)
    _add_max_ram_argument(batch)
    _add_trace_argument(batch)
    batch.set_defaults(func=_cmd_batch)

    serve = sub.add_parser(
        "serve", help="run the HTTP verification API"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8017)
    serve.add_argument(
        "--cache-dir", default=None, help="override REPRO_CACHE_DIR"
    )
    serve.add_argument(
        "--jobs", type=int, default=1, help="per-netlist bit shards"
    )
    serve.add_argument(
        "--worker-threads", type=int, default=2, help="job worker threads"
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=64,
        metavar="N",
        help=(
            "bound on queued jobs; past it submissions get 429 + "
            "Retry-After (default: %(default)s)"
        ),
    )
    serve.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help=(
            "per-job attempt budget for transient failures; an "
            "exhausted budget quarantines the job with a structured "
            "reason (default: 3 attempts)"
        ),
    )
    _add_fallback_argument(serve)
    _add_engine_argument(serve)
    _add_trace_argument(serve)
    serve.set_defaults(func=_cmd_serve)

    cache = sub.add_parser(
        "cache", help="inspect, prune, or clear the result cache"
    )
    cache.add_argument("action", choices=["stats", "prune", "clear"])
    cache.add_argument(
        "--cache-dir", default=None, help="override REPRO_CACHE_DIR"
    )
    cache.add_argument(
        "--max-entries",
        type=int,
        default=None,
        help=(
            "entry budget for prune (default: REPRO_CACHE_MAX_ENTRIES); "
            "oldest-mtime entries beyond it are evicted"
        ),
    )
    cache.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help=(
            "size budget in bytes for prune (default: "
            "REPRO_CACHE_MAX_BYTES); oldest-mtime entries are evicted "
            "until the store fits"
        ),
    )
    cache.set_defaults(func=_cmd_cache)

    trace = sub.add_parser(
        "trace",
        help=(
            "render, profile, or diff --trace JSONL files "
            "(trace FILE | trace diff BASE CURRENT)"
        ),
    )
    trace.add_argument(
        "args",
        nargs="+",
        metavar="FILE | diff BASE CURRENT",
        help=(
            "one trace file to render/profile, or 'diff' plus a "
            "baseline and a current trace to compare"
        ),
    )
    trace.add_argument(
        "--profile",
        action="store_true",
        help=(
            "aggregate per span name (count, total/self wall, CPU, "
            "percentiles) and print the critical path instead of the "
            "span tree"
        ),
    )
    trace.add_argument(
        "--json",
        dest="as_json",
        action="store_true",
        help="emit the profile/diff as JSON for scripting",
    )
    trace.add_argument(
        "--check",
        action="store_true",
        help=(
            "enforce the policy: on a single trace, require spans/"
            "counters and fail on span errors; on a diff, also exit "
            "non-zero when a span regressed beyond the allowed ratio "
            "(host-normalized via the calibrate span)"
        ),
    )
    trace.add_argument(
        "--policy",
        default=None,
        metavar="POLICY.JSON",
        help=(
            "JSON policy file overriding the defaults (max_ratio, "
            "min_wall_s, per_span, require_spans, require_counters, "
            "allow_errors)"
        ),
    )
    trace.set_defaults(func=_cmd_trace)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    # Registered-but-unavailable engines (e.g. cuda without cupy)
    # parse fine; fail here with the probe's recorded reason instead
    # of a traceback deep inside the run.
    engine = getattr(args, "engine", None)
    if engine is not None:
        from repro.engine import engine_availability

        reason = engine_availability().get(engine)
        if reason is not None:
            if not getattr(args, "fallback", False):
                raise SystemExit(
                    f"engine {engine!r} is unavailable: {reason}"
                )
            if args.func not in (_cmd_batch, _cmd_serve):
                # batch/serve resolve per-task/per-submission so the
                # substitution lands on every record; single-shot
                # commands degrade here, once, with a note.
                from repro.engine import EngineError
                from repro.service.resilience import select_engine

                try:
                    args.engine, substituted = select_engine(
                        engine, fallback=True
                    )
                except EngineError as error:
                    raise SystemExit(str(error))
                print(
                    f"warning: {substituted}; using engine "
                    f"{args.engine!r}",
                    file=sys.stderr,
                )
    trace_path = getattr(args, "trace", None)
    if not trace_path:
        return args.func(args)
    from repro import telemetry as _telemetry

    # --trace taps the process-global registry, so every span the run
    # produces (engine phases, cache traffic, campaign workers via
    # fork, HTTP requests under serve) streams to the file as it
    # closes; the final metrics snapshot is appended even on error.
    telemetry = _telemetry.get_telemetry()
    sink = _telemetry.JsonlSink(trace_path)
    telemetry.add_sink(sink)
    # Stamp the trace with a hardware-calibration span so `repro
    # trace diff` can normalize baseline-vs-current across hosts.
    from repro.telemetry.analyze import run_calibration

    run_calibration(telemetry)
    try:
        return args.func(args)
    finally:
        telemetry.flush_metrics()
        telemetry.remove_sink(sink)
        sink.close()


if __name__ == "__main__":
    raise SystemExit(main())
