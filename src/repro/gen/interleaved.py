"""Unrolled interleaved (shift-and-add) multiplier generator.

Bit-serial interleaved modular multiplication is the classic
low-area GF(2^m) datapath: one operand bit is consumed per clock and
the accumulator is reduced modulo P(x) *every cycle* instead of once
at the end.  This generator unrolls all m cycles into combinational
logic, producing the netlist an HLS tool or a fully-unrolled RTL
elaboration would emit.

Two scheduling variants are provided:

``msb_first`` (Horner evaluation)
    ``acc <- (acc * x mod P) + b_j * A`` for ``j = m-1 .. 0``.
``lsb_first``
    keeps a running aligned operand ``A * x^j mod P`` and accumulates
    ``b_j``-masked copies for ``j = 0 .. m-1``.

Both interleave reduction with accumulation, so unlike
Mastrovito/schoolbook netlists there is no stage where the raw product
coefficients ``s_k`` exist as nets — the extractor must recover P(x)
purely from the canonical per-bit expressions, which is exactly the
paper's "regardless of the GF(2^m) algorithm" claim.
"""

from __future__ import annotations

from typing import List, Optional

from repro.fieldmath.bitpoly import bitpoly_degree, bitpoly_str
from repro.gen.naming import input_nets, output_nets
from repro.netlist.build import NetlistBuilder
from repro.netlist.netlist import Netlist


def generate_interleaved(
    modulus: int,
    name: Optional[str] = None,
    msb_first: bool = True,
    balanced: bool = True,
) -> Netlist:
    """Gate-level unrolled interleaved multiplier for ``A*B mod P(x)``.

    >>> net = generate_interleaved(0b10011)      # GF(2^4), x^4+x+1
    >>> sorted(net.outputs)
    ['z0', 'z1', 'z2', 'z3']
    """
    m = bitpoly_degree(modulus)
    if m < 1:
        raise ValueError(f"P(x) = {bitpoly_str(modulus)} has degree < 1")
    a_nets = input_nets(m, "a")
    b_nets = input_nets(m, "b")
    z_nets = output_nets(m)
    variant = "msb" if msb_first else "lsb"
    builder = NetlistBuilder(
        name or f"interleaved_{variant}_m{m}",
        inputs=a_nets + b_nets,
        balanced_trees=balanced,
    )

    if m == 1:
        builder.and2("a0", "b0", output="z0")
        builder.set_outputs(z_nets)
        return builder.finish()

    if msb_first:
        acc = _msb_first_rows(builder, modulus, m, a_nets, b_nets)
    else:
        acc = _lsb_first_rows(builder, modulus, m, a_nets, b_nets)

    for i, net in enumerate(acc):
        builder.buf(net, output=z_nets[i])
    builder.set_outputs(z_nets)
    return builder.finish()


def _msb_first_rows(
    builder: NetlistBuilder,
    modulus: int,
    m: int,
    a_nets: List[str],
    b_nets: List[str],
) -> List[str]:
    """Horner rows: acc <- (acc * x mod P) + b_j * A, j = m-1 .. 0."""
    # First row: acc is zero, so acc = b_{m-1} * A directly.
    acc = [builder.and2(b_nets[m - 1], a_net) for a_net in a_nets]
    for j in range(m - 2, -1, -1):
        shifted = _times_x_mod_p(builder, acc, modulus, m)
        row = [builder.and2(b_nets[j], a_net) for a_net in a_nets]
        acc = [
            builder.xor2(shifted[i], row[i]) for i in range(m)
        ]
    return acc


def _lsb_first_rows(
    builder: NetlistBuilder,
    modulus: int,
    m: int,
    a_nets: List[str],
    b_nets: List[str],
) -> List[str]:
    """Aligned-operand rows: acc += b_j * (A * x^j mod P), j = 0 .. m-1."""
    aligned = list(a_nets)
    acc = [builder.and2(b_nets[0], net) for net in aligned]
    for j in range(1, m):
        aligned = _times_x_mod_p(builder, aligned, modulus, m)
        row = [builder.and2(b_nets[j], net) for net in aligned]
        acc = [builder.xor2(acc[i], row[i]) for i in range(m)]
    return acc


def _times_x_mod_p(
    builder: NetlistBuilder,
    vector: List[str],
    modulus: int,
    m: int,
) -> List[str]:
    """One reduction row: multiply a coefficient vector by x modulo P(x).

    The shifted-out top bit feeds back into every position where P(x)
    has a coefficient — pure wiring plus one XOR per set bit of P'(x),
    because P(x) is a circuit constant.
    """
    top = vector[m - 1]
    result: List[str] = []
    for i in range(m):
        below = vector[i - 1] if i > 0 else None
        feedback = bool((modulus >> i) & 1)
        if below is None:
            # Bit 0: no shift-in; P(0) is 1 for any irreducible P.
            result.append(top if feedback else builder.const0())
        elif feedback:
            result.append(builder.xor2(below, top))
        else:
            result.append(below)
    return result
