"""Dedicated GF(2^m) squarer generator.

Squaring is GF(2)-linear (``(Σ a_i x^i)^2 = Σ a_i x^{2i}``), so ECC
datapaths ship dedicated squarers — pure XOR networks an order of
magnitude smaller than a multiplier — for the square-heavy parts of
point arithmetic (doubling, inversion by Fermat).

Output bit ``z_j`` is the XOR of every ``a_i`` whose doubled power
reduces onto ``x^j``: ``z_j = Σ_i a_i · [x^{2i} mod P(x)]_j``.  The
netlist therefore encodes the *squaring matrix* of P(x), and
:mod:`repro.extract.squarer` shows the paper's technique extends to
recovering P(x) from it — a circuit with no ``a_i·b_j`` products at
all, where Algorithm 2's out-field product test is inapplicable.
"""

from __future__ import annotations

from typing import List, Optional

from repro.fieldmath.bitpoly import bitpoly_degree, bitpoly_mod, bitpoly_str
from repro.gen.naming import input_nets, output_nets
from repro.netlist.build import NetlistBuilder
from repro.netlist.netlist import Netlist


def squaring_matrix(modulus: int) -> List[int]:
    """Column ``i`` (as a bitmask over output bits) = ``x^{2i} mod P``.

    >>> [bin(c) for c in squaring_matrix(0b1011)]       # x^3 + x + 1
    ['0b1', '0b100', '0b110']
    """
    m = bitpoly_degree(modulus)
    return [bitpoly_mod(1 << (2 * i), modulus) for i in range(m)]


def generate_squarer(
    modulus: int,
    name: Optional[str] = None,
    balanced: bool = True,
) -> Netlist:
    """Gate-level squarer computing ``Z = A^2 mod P(x)``.

    Inputs ``a0..a{m-1}``, outputs ``z0..z{m-1}``; the netlist is a
    pure XOR network (plus BUF/CONST for passthrough/empty columns).

    >>> net = generate_squarer(0b10011)
    >>> net.simulate({"a0": 0, "a1": 1, "a2": 0, "a3": 0})  # x^2
    {'z0': 0, 'z1': 0, 'z2': 1, 'z3': 0}
    """
    m = bitpoly_degree(modulus)
    if m < 1:
        raise ValueError(f"P(x) = {bitpoly_str(modulus)} has degree < 1")
    a_nets = input_nets(m, "a")
    z_nets = output_nets(m)
    builder = NetlistBuilder(
        name or f"squarer_m{m}",
        inputs=a_nets,
        balanced_trees=balanced,
    )
    columns = squaring_matrix(modulus)
    for j in range(m):
        taps = [a_nets[i] for i in range(m) if (columns[i] >> j) & 1]
        if taps:
            if len(taps) == 1:
                builder.buf(taps[0], output=z_nets[j])
            else:
                builder.xor_tree(taps, output=z_nets[j])
        else:
            # No power reduces onto x^j — impossible for irreducible P
            # (the squaring map is a bijection), but keep the
            # generator total for reducible masks.
            builder.buf(builder.const0(), output=z_nets[j])
    builder.set_outputs(z_nets)
    return builder.finish()
