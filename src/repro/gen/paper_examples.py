"""Circuits taken verbatim from the paper, for tests and walkthroughs.

:func:`paper_figure2_multiplier` rebuilds the post-synthesized 2-bit
GF(2^2) multiplier of Figure 2 (irreducible polynomial x^2 + x + 1),
reconstructed gate-for-gate from the Figure 3 rewriting trace:

========  ======================  =========================
gate      function                role in the trace
========  ======================  =========================
G6        s0 = NAND(a0, b0)       final step of the z0 thread
G5        s2 = NAND(a1, b1)       shared by both threads
G4        p0 = NAND(a1, b0)       z1 thread
G3        p1 = NAND(a0, b1)       z1 thread
G2        s1 = XOR(p0, p1)        z1 thread
G1        z1 = XNOR(s1, s2)       output bit 1
G0        z0 = XOR(s0, s2)        output bit 0
========  ======================  =========================

Backward rewriting must yield ``z0 = a0*b0 + a1*b1`` and
``z1 = a0*b1 + a1*b0 + a1*b1`` exactly as in the paper's Example 1,
and Algorithm 2 must recover ``P(x) = x^2 + x + 1`` (Example 2).
"""

from __future__ import annotations

from repro.netlist.gate import Gate, GateType
from repro.netlist.netlist import Netlist


def paper_figure2_multiplier() -> Netlist:
    """The 2-bit GF(2^2) multiplier of Figure 2, P(x) = x^2 + x + 1.

    >>> net = paper_figure2_multiplier()
    >>> net.simulate({"a0": 1, "a1": 1, "b0": 0, "b1": 1})
    {'z0': 1, 'z1': 0}
    """
    netlist = Netlist(
        "paper_figure2",
        inputs=["a0", "a1", "b0", "b1"],
        outputs=["z0", "z1"],
    )
    netlist.add_gate(Gate("s0", GateType.NAND, ("a0", "b0")))   # G6
    netlist.add_gate(Gate("s2", GateType.NAND, ("a1", "b1")))   # G5
    netlist.add_gate(Gate("p0", GateType.NAND, ("a1", "b0")))   # G4
    netlist.add_gate(Gate("p1", GateType.NAND, ("a0", "b1")))   # G3
    netlist.add_gate(Gate("s1", GateType.XOR, ("p0", "p1")))    # G2
    netlist.add_gate(Gate("z1", GateType.XNOR, ("s1", "s2")))   # G1
    netlist.add_gate(Gate("z0", GateType.XOR, ("s0", "s2")))    # G0
    netlist.validate()
    return netlist
