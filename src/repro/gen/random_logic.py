"""Random combinational netlists — fuzz input for the synthesis passes.

The synthesis pipeline must be function-preserving on *any* netlist,
not only on multipliers.  This generator produces random combinational
DAGs over the full cell library (including the complex AOI/OAI/MUX
cells and constants) so the property-based tests can hammer every pass
with structures no multiplier generator would emit: dead logic,
constant subtrees, duplicated gates, deep INV chains.

Determinism: the same seed always yields the same netlist, so failing
cases shrink and replay.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.netlist.gate import Gate, GateType, gate_arity
from repro.netlist.netlist import Netlist

#: Cell mix for random generation (weights favour the common gates).
_GATE_POOL = (
    [GateType.AND] * 4
    + [GateType.OR] * 3
    + [GateType.XOR] * 4
    + [GateType.INV] * 2
    + [GateType.BUF]
    + [GateType.NAND, GateType.NOR, GateType.XNOR]
    + [GateType.AOI21, GateType.OAI21, GateType.MUX2]
    + [GateType.CONST0, GateType.CONST1]
)


def generate_random_netlist(
    seed: int,
    n_inputs: int = 4,
    n_gates: int = 20,
    n_outputs: Optional[int] = None,
    name: Optional[str] = None,
) -> Netlist:
    """A random combinational netlist with ``n_gates`` cells.

    Outputs are drawn from the last third of the gates so most logic is
    live but some dead logic usually remains (on purpose).

    >>> net = generate_random_netlist(7)
    >>> net.validate()
    >>> 1 <= len(net.outputs) <= len(net)
    True
    """
    if n_inputs < 1 or n_gates < 1:
        raise ValueError("need at least one input and one gate")
    rng = random.Random(seed)
    inputs = [f"i{k}" for k in range(n_inputs)]
    netlist = Netlist(
        name or f"random_s{seed}", inputs=inputs
    )
    available: List[str] = list(inputs)

    for idx in range(n_gates):
        gtype = rng.choice(_GATE_POOL)
        arity = gate_arity(gtype)
        if arity is None:
            arity = rng.choice([2, 2, 2, 3])
        operands = tuple(
            rng.choice(available) for _ in range(arity)
        )
        output = f"g{idx}"
        netlist.add_gate(Gate(output, gtype, operands))
        available.append(output)

    gate_names = [gate.output for gate in netlist.gates]
    candidates = gate_names[-max(1, n_gates // 3):]
    count = n_outputs if n_outputs is not None else rng.randint(
        1, min(4, len(candidates))
    )
    count = max(1, min(count, len(candidates)))
    for output in rng.sample(candidates, count):
        netlist.add_output(output)
    netlist.validate()
    return netlist
