"""Two-stage schoolbook + reduction-network multiplier (Figure 1 shape).

This generator materialises the intermediate product coefficients
``s_0 .. s_{2m-2}`` as explicit nets (stage 1, the integer-style
product without carries) and then implements the reduction table of
Figure 1 as a second XOR stage (stage 2): output column ``z_i`` XORs
``s_i`` with every out-field ``s_{m+t}`` whose reduction row
``x^{m+t} mod P`` covers bit ``i``.

Functionally identical to the Mastrovito generator; structurally
different (deeper cones, shared ``s_k`` nets across columns), which
gives the test suite a second implementation the extractor must handle
"regardless of the algorithm".
"""

from __future__ import annotations

from typing import Optional

from repro.fieldmath.bitpoly import bitpoly_degree, bitpoly_str
from repro.fieldmath.reduction import column_contributions
from repro.gen.naming import input_nets, output_nets
from repro.gen.partial_products import coefficient_groups, emit_partial_products
from repro.netlist.build import NetlistBuilder
from repro.netlist.netlist import Netlist


def generate_schoolbook(
    modulus: int,
    name: Optional[str] = None,
    balanced: bool = True,
) -> Netlist:
    """Gate-level schoolbook+reduction multiplier for ``A*B mod P(x)``.

    >>> net = generate_schoolbook(0b10011)
    >>> net.simulate({"a0": 1, "a1": 1, "a2": 0, "a3": 0,
    ...               "b0": 1, "b1": 1, "b2": 0, "b3": 0})["z2"]
    1
    """
    m = bitpoly_degree(modulus)
    if m < 1:
        raise ValueError(f"P(x) = {bitpoly_str(modulus)} has degree < 1")
    a_nets = input_nets(m, "a")
    b_nets = input_nets(m, "b")
    z_nets = output_nets(m)
    builder = NetlistBuilder(
        name or f"schoolbook_m{m}",
        inputs=a_nets + b_nets,
        balanced_trees=balanced,
    )

    if m == 1:
        builder.and2("a0", "b0", output="z0")
        builder.set_outputs(z_nets)
        return builder.finish()

    plane = emit_partial_products(builder, a_nets, b_nets)

    # Stage 1: the carry-free product coefficients s_k.
    s_nets = []
    for group in coefficient_groups(m):
        nets = [plane[pair] for pair in group]
        s_nets.append(builder.xor_tree(nets))

    # Stage 2: the Figure-1 reduction table, one XOR column per output.
    for i, contributions in enumerate(column_contributions(modulus)):
        builder.xor_tree(
            [s_nets[k] for k in contributions], output=z_nets[i]
        )
    builder.set_outputs(z_nets)
    return builder.finish()
