"""Massey-Omura normal-basis multiplier generator — the negative case.

The paper's Theorem 3 is a statement about *polynomial basis*
multipliers: output words are coefficient vectors over
``{1, x, ..., x^(m-1)}`` and the out-field products ``P_m`` are folded
back by P(x).  A normal-basis multiplier computes the same field
product under a different coordinate encoding, so Algorithm 2 must
*not* find an irreducible polynomial in it — there is none to find.

This generator exists to pin that boundary down in tests and to give
:mod:`repro.extract.diagnose` a realistic "multiplier, but not
polynomial basis" specimen: extraction yields ``P(x) = x^m`` (no bit
contains the full ``P_m`` set), which is reducible for every m > 1,
and golden-model verification fails.

The construction is the textbook Massey-Omura parallel multiplier:
output coordinate ``z_k = Σ λ[i][j] · a_{(i+k) mod m} · b_{(j+k) mod m}``
where λ is the multiplication matrix of the basis (all m output forms
share one bilinear structure, cyclically shifted).
"""

from __future__ import annotations

from typing import Optional

from repro.fieldmath.bitpoly import bitpoly_degree, bitpoly_str
from repro.fieldmath.gf2m import GF2m
from repro.fieldmath.normal import NormalBasis
from repro.gen.naming import input_nets, output_nets
from repro.netlist.build import NetlistBuilder
from repro.netlist.netlist import Netlist


def generate_massey_omura(
    modulus: int,
    name: Optional[str] = None,
    balanced: bool = True,
) -> Netlist:
    """Gate-level Massey-Omura multiplier over a normal basis.

    ``modulus`` defines the underlying field GF(2^m) (it must still be
    irreducible — the *field* is the same, only the basis differs).
    Operands and result are normal-basis coordinate vectors.

    >>> net = generate_massey_omura(0b1011)      # GF(2^3)
    >>> sorted(net.outputs)
    ['z0', 'z1', 'z2']
    """
    m = bitpoly_degree(modulus)
    if m < 1:
        raise ValueError(f"P(x) = {bitpoly_str(modulus)} has degree < 1")
    field = GF2m(modulus)
    basis = NormalBasis.find(field)
    matrix = basis.multiplication_matrix()

    a_nets = input_nets(m, "a")
    b_nets = input_nets(m, "b")
    z_nets = output_nets(m)
    builder = NetlistBuilder(
        name or f"massey_omura_m{m}",
        inputs=a_nets + b_nets,
        strash=True,  # the shifted forms reuse many a_i*b_j products
        balanced_trees=balanced,
    )

    for k in range(m):
        terms = []
        for i in range(m):
            row = matrix[i]
            for j in range(m):
                if (row >> j) & 1:
                    terms.append(
                        builder.and2(
                            a_nets[(i + k) % m], b_nets[(j + k) % m]
                        )
                    )
        builder.xor_tree(terms, output=z_nets[k])
    builder.set_outputs(z_nets)
    return builder.finish()
