"""Gate-level GF(2^m) multiplier generators.

The paper evaluates on multipliers produced by external generators
(Kalla's benchmarks [1]); this package is our from-scratch equivalent.
Every generator takes the irreducible polynomial P(x) as a bit mask and
emits a flattened combinational :class:`~repro.netlist.netlist.Netlist`
with inputs ``a0..a{m-1}``, ``b0..b{m-1}`` and outputs ``z0..z{m-1}``
computing ``Z = A·B mod P(x)``:

``mastrovito``
    the classic Mastrovito structure — per-output XOR trees over the
    shared partial products, with the reduction folded into the product
    matrix (Tables I, III, IV; Figure 4);
``schoolbook``
    the two-stage structure of Figure 1 — explicit ``s_k`` coefficient
    trees followed by a reduction network;
``montgomery``
    a *flattened* Montgomery multiplier — two unrolled bit-serial
    Montgomery steps (``MM(A,B)`` then the ``x^{2m} mod P`` domain
    correction) with no block boundaries in the emitted netlist
    (Tables II, III);
``karatsuba``
    recursive Karatsuba-Ofman product stage (sub-quadratic AND count)
    over the shared reduction network;
``interleaved``
    fully unrolled bit-serial shift-and-add datapath, MSB- or
    LSB-first, with the reduction interleaved into every row;
``normal_basis``
    Massey-Omura multiplier over a *normal* basis — a correct field
    multiplier that polynomial-basis extraction must reject (the
    negative case for Theorem 3);
``redundancy``
    function-preserving decoration emulating raw generator output
    (the pre-synthesis netlists of Tables I/II);
``faults``
    single-fault mutants (gate flip, input swap, stuck-at) for
    exercising the golden-model verification;
``paper_examples``
    the concrete 2-bit and 4-bit circuits of Figures 1-3.
"""

from repro.gen.naming import input_nets, output_nets
from repro.gen.partial_products import emit_partial_products
from repro.gen.mastrovito import generate_mastrovito
from repro.gen.schoolbook import generate_schoolbook
from repro.gen.montgomery import generate_montgomery, generate_montgomery_step
from repro.gen.karatsuba import generate_karatsuba
from repro.gen.interleaved import generate_interleaved
from repro.gen.digit_serial import generate_digit_serial
from repro.gen.normal_basis import generate_massey_omura
from repro.gen.squarer import generate_squarer, squaring_matrix
from repro.gen.tower import generate_tower, tower_reference
from repro.gen.redundancy import decorate_with_redundancy
from repro.gen.faults import (
    FaultDescription,
    FaultError,
    flip_gate,
    random_fault,
    stuck_at,
    swap_input,
)

__all__ = [
    "input_nets",
    "output_nets",
    "emit_partial_products",
    "generate_mastrovito",
    "generate_schoolbook",
    "generate_montgomery",
    "generate_montgomery_step",
    "generate_karatsuba",
    "generate_interleaved",
    "generate_digit_serial",
    "generate_massey_omura",
    "generate_squarer",
    "squaring_matrix",
    "generate_tower",
    "tower_reference",
    "decorate_with_redundancy",
    "FaultDescription",
    "FaultError",
    "flip_gate",
    "random_fault",
    "stuck_at",
    "swap_input",
]
