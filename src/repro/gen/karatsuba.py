"""Karatsuba multiplier generator.

Cryptographic hardware for large fields rarely builds the full
quadratic AND plane; it splits the operands and recurses, trading AND
gates for XOR pre/post-additions (Karatsuba-Ofman).  The resulting
netlist has a very different shape from Mastrovito/Montgomery — deep
shared XOR trees *before* the product coefficients exist — which makes
it a strong test of the paper's claim that extraction works
"regardless of the GF(2^m) algorithm".

Structure: a recursive carry-free product stage producing the
coefficients ``s_0 .. s_{2m-2}``, followed by the same Figure-1
reduction network the schoolbook generator uses.  Only the product
stage differs between the two generators, so any extraction difference
is attributable to the Karatsuba recursion.
"""

from __future__ import annotations

from typing import List, Optional

from repro.fieldmath.bitpoly import bitpoly_degree, bitpoly_str
from repro.fieldmath.reduction import column_contributions
from repro.gen.naming import input_nets, output_nets
from repro.netlist.build import NetlistBuilder
from repro.netlist.netlist import Netlist


def generate_karatsuba(
    modulus: int,
    name: Optional[str] = None,
    base_threshold: int = 2,
    balanced: bool = True,
) -> Netlist:
    """Gate-level Karatsuba multiplier for ``Z = A*B mod P(x)``.

    ``base_threshold`` is the operand width at which the recursion
    bottoms out into a schoolbook product; raising it yields shallower
    recursion with wider base blocks (the usual area/depth knob in
    hardware Karatsuba).

    >>> net = generate_karatsuba(0b10011)        # GF(2^4), x^4+x+1
    >>> sorted(net.outputs)
    ['z0', 'z1', 'z2', 'z3']
    """
    m = bitpoly_degree(modulus)
    if m < 1:
        raise ValueError(f"P(x) = {bitpoly_str(modulus)} has degree < 1")
    if base_threshold < 1:
        raise ValueError("base_threshold must be >= 1")
    a_nets = input_nets(m, "a")
    b_nets = input_nets(m, "b")
    z_nets = output_nets(m)
    builder = NetlistBuilder(
        name or f"karatsuba_m{m}",
        inputs=a_nets + b_nets,
        balanced_trees=balanced,
    )

    if m == 1:
        builder.and2("a0", "b0", output="z0")
        builder.set_outputs(z_nets)
        return builder.finish()

    s_nets = _karatsuba_product(builder, a_nets, b_nets, base_threshold)

    for i, contributions in enumerate(column_contributions(modulus)):
        builder.xor_tree(
            [s_nets[k] for k in contributions], output=z_nets[i]
        )
    builder.set_outputs(z_nets)
    return builder.finish()


def _karatsuba_product(
    builder: NetlistBuilder,
    a_nets: List[str],
    b_nets: List[str],
    base_threshold: int,
) -> List[str]:
    """Carry-free product of two equal-width operands.

    Returns one net per coefficient ``s_0 .. s_{2n-2}``.
    """
    n = len(a_nets)
    if n <= base_threshold:
        return _schoolbook_product(builder, a_nets, b_nets)

    # Split low/high around h; the high halves may be one bit narrower.
    h = (n + 1) // 2
    a_low, a_high = a_nets[:h], a_nets[h:]
    b_low, b_high = b_nets[:h], b_nets[h:]

    d0 = _karatsuba_product(builder, a_low, b_low, base_threshold)
    d2 = _karatsuba_product(builder, a_high, b_high, base_threshold)

    a_sum = _vector_xor(builder, a_low, a_high)
    b_sum = _vector_xor(builder, b_low, b_high)
    d1 = _karatsuba_product(builder, a_sum, b_sum, base_threshold)

    # middle = D1 + D0 + D2 (Karatsuba's subtraction is XOR in GF(2)).
    middle: List[str] = []
    for idx in range(len(d1)):
        terms = [d1[idx]]
        if idx < len(d0):
            terms.append(d0[idx])
        if idx < len(d2):
            terms.append(d2[idx])
        middle.append(builder.xor_tree(terms))

    # Assemble s = D0 + x^h * middle + x^{2h} * D2 with overlap XORs.
    positions: List[List[str]] = [[] for _ in range(2 * n - 1)]
    for idx, net in enumerate(d0):
        positions[idx].append(net)
    for idx, net in enumerate(middle):
        positions[idx + h].append(net)
    for idx, net in enumerate(d2):
        positions[idx + 2 * h].append(net)
    return [builder.xor_tree(nets) for nets in positions]


def _schoolbook_product(
    builder: NetlistBuilder, a_nets: List[str], b_nets: List[str]
) -> List[str]:
    """Base-case quadratic product over possibly tiny operands."""
    n = len(a_nets)
    width = len(b_nets)
    positions: List[List[str]] = [[] for _ in range(n + width - 1)]
    for j, a_net in enumerate(a_nets):
        for k, b_net in enumerate(b_nets):
            positions[j + k].append(builder.and2(a_net, b_net))
    return [builder.xor_tree(nets) for nets in positions]


def _vector_xor(
    builder: NetlistBuilder, low: List[str], high: List[str]
) -> List[str]:
    """Coefficient-wise XOR of the (possibly narrower) high half into low."""
    combined = []
    for idx, net in enumerate(low):
        if idx < len(high):
            combined.append(builder.xor2(net, high[idx]))
        else:
            combined.append(net)
    return combined
