"""Fault injection — buggy multipliers for the diagnosis machinery.

The extraction flow ends with a golden-model equivalence check.  To
test that the check has teeth, this module manufactures single-fault
variants of a correct netlist, the standard fault models of
manufacturing test and trojan analysis:

``gate_flip``
    replace a gate's function by a different one of the same arity
    (XOR -> OR, AND -> XOR, ...) — models a wrong cell in the library
    binding or a one-gate trojan;
``input_swap``
    rewire one gate input to a different (topologically legal) net —
    models a routing/netlist-editing error;
``stuck_at``
    replace a gate output by constant 0 or 1 — the classical
    stuck-at fault.

Faults are always *structural* and may turn out to be functionally
benign (e.g. rewiring an XOR input to an equal-valued net).  The
helpers report what was changed; deciding whether the change is
observable is the extractor/verifier's job, and the test suite checks
that every *observable* fault is caught.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.netlist.gate import Gate, GateType, gate_arity
from repro.netlist.netlist import Netlist

#: Gate-flip substitution candidates per type (same arity class).
_FLIP_CANDIDATES = {
    GateType.AND: (GateType.OR, GateType.XOR, GateType.NAND),
    GateType.OR: (GateType.AND, GateType.XOR, GateType.NOR),
    GateType.XOR: (GateType.OR, GateType.AND, GateType.XNOR),
    GateType.NAND: (GateType.AND, GateType.NOR),
    GateType.NOR: (GateType.OR, GateType.NAND),
    GateType.XNOR: (GateType.XOR,),
    GateType.INV: (GateType.BUF,),
    GateType.BUF: (GateType.INV,),
}


class FaultError(ValueError):
    """The requested fault cannot be injected into this netlist."""


@dataclass(frozen=True)
class FaultDescription:
    """What a fault changed, for reports and test assertions."""

    kind: str
    gate: str
    detail: str

    def __str__(self) -> str:
        return f"{self.kind} at {self.gate}: {self.detail}"


def flip_gate(netlist: Netlist, gate_name: str, seed: int = 0) -> tuple:
    """Replace the function of one gate; returns (netlist, description).

    >>> from repro.gen.mastrovito import generate_mastrovito
    >>> lean = generate_mastrovito(0b1011)
    >>> buggy, fault = flip_gate(lean, lean.gates[0].output)
    >>> fault.kind
    'gate_flip'
    """
    target = netlist.driver_of(gate_name)
    if target is None:
        raise FaultError(f"no gate drives {gate_name!r}")
    candidates = _FLIP_CANDIDATES.get(target.gtype)
    if not candidates:
        raise FaultError(
            f"no flip candidate for {target.gtype.value} gate"
        )
    rng = random.Random(seed)
    new_type = rng.choice(candidates)
    mutated = _rebuild(
        netlist,
        gate_name,
        Gate(target.output, new_type, target.inputs),
        suffix="gateflip",
    )
    description = FaultDescription(
        kind="gate_flip",
        gate=gate_name,
        detail=f"{target.gtype.value} -> {new_type.value}",
    )
    return mutated, description


def swap_input(netlist: Netlist, gate_name: str, seed: int = 0) -> tuple:
    """Rewire one input of a gate to another topologically earlier net."""
    target = netlist.driver_of(gate_name)
    if target is None:
        raise FaultError(f"no gate drives {gate_name!r}")
    rng = random.Random(seed)

    # Legal replacement sources: primary inputs and outputs of gates
    # strictly before the target in topological order (no cycles).
    legal: List[str] = list(netlist.inputs)
    for gate in netlist.topological_order():
        if gate.output == gate_name:
            break
        legal.append(gate.output)
    pin = rng.randrange(len(target.inputs))
    choices = [net for net in legal if net != target.inputs[pin]]
    if not choices:
        raise FaultError("no alternative net available for rewiring")
    replacement = rng.choice(choices)
    new_inputs = list(target.inputs)
    new_inputs[pin] = replacement
    mutated = _rebuild(
        netlist,
        gate_name,
        Gate(target.output, target.gtype, tuple(new_inputs)),
        suffix="inputswap",
    )
    description = FaultDescription(
        kind="input_swap",
        gate=gate_name,
        detail=(
            f"pin {pin}: {target.inputs[pin]} -> {replacement}"
        ),
    )
    return mutated, description


def stuck_at(netlist: Netlist, gate_name: str, value: int) -> tuple:
    """Tie a gate output to constant ``value`` (0 or 1)."""
    if value not in (0, 1):
        raise FaultError("stuck-at value must be 0 or 1")
    target = netlist.driver_of(gate_name)
    if target is None:
        raise FaultError(f"no gate drives {gate_name!r}")
    const = GateType.CONST1 if value else GateType.CONST0
    mutated = _rebuild(
        netlist, gate_name, Gate(gate_name, const, ()), suffix=f"sa{value}"
    )
    description = FaultDescription(
        kind=f"stuck_at_{value}",
        gate=gate_name,
        detail=f"{target.gtype.value} output tied to {value}",
    )
    return mutated, description


def random_fault(
    netlist: Netlist, seed: int = 0, kinds: Optional[List[str]] = None
) -> tuple:
    """Inject one random fault; returns (netlist, description).

    ``kinds`` restricts the fault models (default: all three).
    """
    rng = random.Random(seed)
    chosen_kinds = list(kinds) if kinds else [
        "gate_flip", "input_swap", "stuck_at"
    ]
    kind = rng.choice(chosen_kinds)
    gates = [g for g in netlist.gates if g.gtype in _FLIP_CANDIDATES] \
        if kind == "gate_flip" else list(netlist.gates)
    if not gates:
        raise FaultError("netlist has no gate eligible for this fault")
    gate = rng.choice(gates)
    if kind == "gate_flip":
        return flip_gate(netlist, gate.output, seed=rng.randrange(1 << 30))
    if kind == "input_swap":
        return swap_input(netlist, gate.output, seed=rng.randrange(1 << 30))
    return stuck_at(netlist, gate.output, rng.randrange(2))


def _rebuild(
    netlist: Netlist, gate_name: str, replacement: Gate, suffix: str
) -> Netlist:
    """Copy the netlist with one gate swapped out."""
    mutated = Netlist(
        f"{netlist.name}_{suffix}_{gate_name}", inputs=netlist.inputs
    )
    for gate in netlist.gates:
        mutated.add_gate(replacement if gate.output == gate_name else gate)
    for net in netlist.outputs:
        mutated.add_output(net)
    mutated.validate()
    return mutated
