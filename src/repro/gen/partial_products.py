"""Partial-product plane shared by the polynomial-basis generators.

Every polynomial-basis GF(2^m) multiplier starts from the same m^2
AND-gate plane ``pp[i][j] = a_i AND b_j``; the generators differ only
in how they sum and reduce it.  The plane is emitted once and shared
between all output cones — the logic sharing the paper notes does not
break per-output-bit rewriting (Theorem 2).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.netlist.build import NetlistBuilder


def emit_partial_products(
    builder: NetlistBuilder,
    a_nets: List[str],
    b_nets: List[str],
) -> Dict[Tuple[int, int], str]:
    """Emit the AND plane; returns ``(i, j) -> net`` for ``a_i * b_j``."""
    plane: Dict[Tuple[int, int], str] = {}
    for i, a_net in enumerate(a_nets):
        for j, b_net in enumerate(b_nets):
            plane[(i, j)] = builder.and2(a_net, b_net)
    return plane


def coefficient_groups(m: int) -> List[List[Tuple[int, int]]]:
    """Index pairs contributing to each product coefficient ``s_k``.

    ``s_k = XOR of a_i*b_j with i + j = k`` for ``k = 0 .. 2m-2``.

    >>> coefficient_groups(2)
    [[(0, 0)], [(0, 1), (1, 0)], [(1, 1)]]
    """
    groups: List[List[Tuple[int, int]]] = [[] for _ in range(2 * m - 1)]
    for i in range(m):
        for j in range(m):
            groups[i + j].append((i, j))
    return groups
