"""Flattened Montgomery multiplier generator.

A Montgomery step computes ``MM(X, Y) = X·Y·x^{-m} mod P(x)`` with the
bit-serial loop::

    C = 0
    for i in 0 .. m-1:
        C = C xor x_i·Y                # conditional row add
        C = (C xor c_0·P(x)) / x       # make divisible by x, shift

Unrolling the loop gives pure combinational logic.  The full multiplier
composes two steps, with the second operand the compile-time constant
``R2 = x^{2m} mod P``::

    Z = MM(MM(A, B), R2) = A·B·x^{-m}·x^{2m}·x^{-m} = A·B mod P(x)

The emitted netlist is *flattened*: nothing marks the stage boundary,
matching the paper's "we have no knowledge of the block boundaries"
setup for Table II.  Unlike Mastrovito cones, every output bit's cone
spans nearly the whole circuit (the ``c_0`` feedback mixes all bits),
which is why backward rewriting is far more expensive on these
netlists — the effect Table II measures.
"""

from __future__ import annotations

from typing import List, Optional

from repro.fieldmath.bitpoly import bitpoly_degree, bitpoly_str
from repro.fieldmath.montgomery_math import mont_r2
from repro.gen.naming import input_nets, output_nets
from repro.netlist.build import NetlistBuilder
from repro.netlist.gate import GateType
from repro.netlist.netlist import Netlist


def _mm_rows_variable(
    builder: NetlistBuilder,
    x_nets: List[str],
    y_nets: List[str],
    modulus: int,
) -> List[Optional[str]]:
    """Unrolled Montgomery step with two variable operands.

    Returns the m result nets (``None`` entries denote constant 0,
    which only survive for degenerate moduli).
    """
    m = bitpoly_degree(modulus)
    acc: List[Optional[str]] = [None] * m
    for i in range(m):
        # C ^= x_i * Y  — one AND row plus accumulate XORs.
        for j in range(m):
            product = builder.and2(x_nets[i], y_nets[j])
            acc[j] = product if acc[j] is None else builder.xor2(acc[j], product)
        acc = _reduce_shift(builder, acc, modulus)
    return acc


def _mm_rows_constant(
    builder: NetlistBuilder,
    x_const: int,
    y_nets: List[Optional[str]],
    modulus: int,
) -> List[Optional[str]]:
    """Unrolled Montgomery step with a constant first operand.

    Constant-zero bits of ``x_const`` contribute no logic (the row add
    folds away at generation time), exactly as a synthesizable RTL
    description with a constant input would elaborate.
    """
    m = bitpoly_degree(modulus)
    acc: List[Optional[str]] = [None] * m
    for i in range(m):
        if (x_const >> i) & 1:
            for j in range(m):
                if y_nets[j] is None:
                    continue
                acc[j] = (
                    y_nets[j]
                    if acc[j] is None
                    else builder.xor2(acc[j], y_nets[j])
                )
        acc = _reduce_shift(builder, acc, modulus)
    return acc


def _reduce_shift(
    builder: NetlistBuilder,
    acc: List[Optional[str]],
    modulus: int,
) -> List[Optional[str]]:
    """One ``C = (C xor c_0·P)/x`` step of the Montgomery loop.

    Bit 0 of ``C xor c_0·P`` is always 0 (``p_0 = 1``), so the shift
    drops it; the new top bit is ``c_0`` itself (``p_m = 1``).
    """
    m = len(acc)
    c0 = acc[0]
    shifted: List[Optional[str]] = [None] * m
    for j in range(1, m):
        bit = acc[j]
        if c0 is not None and (modulus >> j) & 1:
            bit = c0 if bit is None else builder.xor2(bit, c0)
        shifted[j - 1] = bit
    shifted[m - 1] = c0  # p_m = 1 by construction
    return shifted


def generate_montgomery_step(
    modulus: int,
    name: Optional[str] = None,
) -> Netlist:
    """A single unrolled Montgomery step ``Z = A·B·x^{-m} mod P(x)``.

    Note this is *not* a modular multiplier — the result carries the
    ``x^{-m}`` Montgomery factor.  Exposed separately so tests can
    validate the step against the word-level reference
    (:func:`repro.fieldmath.montgomery_math.mont_mul`) and so the
    extraction experiments can demonstrate what happens on a circuit
    that is not ``A·B mod P``.
    """
    m = bitpoly_degree(modulus)
    if m < 1:
        raise ValueError(f"P(x) = {bitpoly_str(modulus)} has degree < 1")
    a_nets = input_nets(m, "a")
    b_nets = input_nets(m, "b")
    z_nets = output_nets(m)
    builder = NetlistBuilder(
        name or f"montgomery_step_m{m}", inputs=a_nets + b_nets
    )
    result = _mm_rows_variable(builder, a_nets, b_nets, modulus)
    _bind_outputs(builder, result, z_nets)
    builder.set_outputs(z_nets)
    return builder.finish()


def generate_montgomery(
    modulus: int,
    name: Optional[str] = None,
) -> Netlist:
    """Flattened full Montgomery multiplier ``Z = A·B mod P(x)``.

    Two composed, unrolled Montgomery steps; the correction constant
    ``R2 = x^{2m} mod P`` is folded into the second step's logic.

    >>> from repro.fieldmath.gf2m import GF2m
    >>> net = generate_montgomery(0b10011)
    >>> out = net.simulate({"a0": 1, "a1": 1, "a2": 0, "a3": 0,
    ...                     "b0": 0, "b1": 1, "b2": 0, "b3": 0})
    >>> sum(out[f"z{i}"] << i for i in range(4)) == GF2m(0b10011).mul(3, 2)
    True
    """
    m = bitpoly_degree(modulus)
    if m < 1:
        raise ValueError(f"P(x) = {bitpoly_str(modulus)} has degree < 1")
    a_nets = input_nets(m, "a")
    b_nets = input_nets(m, "b")
    z_nets = output_nets(m)
    builder = NetlistBuilder(
        name or f"montgomery_m{m}", inputs=a_nets + b_nets
    )
    stage1 = _mm_rows_variable(builder, a_nets, b_nets, modulus)
    stage1_named: List[Optional[str]] = list(stage1)
    stage2 = _mm_rows_constant(builder, mont_r2(modulus), stage1_named, modulus)
    _bind_outputs(builder, stage2, z_nets)
    builder.set_outputs(z_nets)
    return builder.finish()


def _bind_outputs(
    builder: NetlistBuilder,
    result: List[Optional[str]],
    z_nets: List[str],
) -> None:
    """Alias the accumulator nets onto the named output ports."""
    for net, z_name in zip(result, z_nets):
        if net is None:
            builder.emit(GateType.CONST0, (), output=z_name)
        else:
            builder.buf(net, output=z_name)
