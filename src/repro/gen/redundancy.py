"""Redundancy decoration — emulating unoptimized generator output.

The netlists the paper consumes come straight from multiplier
generators and are substantially larger than the optimized versions
ABC produces (Table I vs Table III: the m=64 Mastrovito shrinks from
21,814 equations to a netlist that extracts in half the time).  Our
generators emit lean netlists, so to reproduce the Table III
comparison we provide the inverse transformation: decorate a lean
netlist with the kind of redundancy raw generator output carries —
double-inverter pairs on internal nets and buffered outputs.

The decoration is exactly what ``synthesize`` removes, so the
flat-vs-synthesized experiment becomes: ``decorate -> extract`` versus
``decorate -> synthesize -> extract``.
"""

from __future__ import annotations

import random
from typing import Dict

from repro.netlist.gate import Gate, GateType
from repro.netlist.netlist import Netlist


def decorate_with_redundancy(
    netlist: Netlist,
    inv_pair_fraction: float = 1.0,
    buffer_outputs: bool = True,
    seed: int = 2017,
) -> Netlist:
    """Insert function-preserving redundancy into a netlist.

    ``inv_pair_fraction`` of the internal gate outputs get a
    double-inverter chain spliced between driver and consumers;
    ``buffer_outputs`` adds a BUF stage in front of every primary
    output.  The result computes the same function with roughly 2-3x
    the gate count.

    >>> from repro.gen.mastrovito import generate_mastrovito
    >>> lean = generate_mastrovito(0b1011)
    >>> fat = decorate_with_redundancy(lean)
    >>> len(fat) > 2 * len(lean)
    True
    >>> vec = {"a0": 1, "a1": 0, "a2": 1, "b0": 1, "b1": 1, "b2": 0}
    >>> fat.simulate(vec) == lean.simulate(vec)
    True
    """
    if not 0.0 <= inv_pair_fraction <= 1.0:
        raise ValueError("inv_pair_fraction must be within [0, 1]")
    rng = random.Random(seed)
    result = Netlist(f"{netlist.name}_flat", inputs=netlist.inputs)
    #: original net -> net consumers should now read
    alias: Dict[str, str] = {net: net for net in netlist.inputs}
    counter = 0

    def fresh(tag: str) -> str:
        nonlocal counter
        counter += 1
        return f"__red_{tag}{counter}"

    output_set = set(netlist.outputs)
    for gate in netlist.topological_order():
        inputs = tuple(alias[name] for name in gate.inputs)
        result.add_gate(Gate(gate.output, gate.gtype, inputs))
        alias[gate.output] = gate.output
        is_output = gate.output in output_set
        if not is_output and rng.random() < inv_pair_fraction:
            first = fresh("n")
            second = fresh("n")
            result.add_gate(Gate(first, GateType.INV, (gate.output,)))
            result.add_gate(Gate(second, GateType.INV, (first,)))
            alias[gate.output] = second

    for net in netlist.outputs:
        result.add_output(net)
    if buffer_outputs:
        # Rebuild with a BUF stage: rename each PO's driver, then BUF.
        rebuffered = Netlist(result.name, inputs=result.inputs)
        renamed: Dict[str, str] = {}
        for gate in result.topological_order():
            if gate.output in output_set:
                inner = fresh("o")
                renamed[gate.output] = inner
                rebuffered.add_gate(
                    Gate(
                        inner,
                        gate.gtype,
                        tuple(renamed.get(n, n) for n in gate.inputs),
                    )
                )
                rebuffered.add_gate(Gate(gate.output, GateType.BUF, (inner,)))
            else:
                rebuffered.add_gate(
                    Gate(
                        gate.output,
                        gate.gtype,
                        tuple(renamed.get(n, n) for n in gate.inputs),
                    )
                )
        for net in netlist.outputs:
            rebuffered.add_output(net)
        result = rebuffered

    result.validate()
    return result
