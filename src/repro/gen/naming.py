"""Port naming conventions shared by all multiplier generators.

The paper (and the extraction algorithm) assume the multiplier operands
are ``A = sum a_i x^i`` and ``B = sum b_i x^i`` with the product
``Z = sum z_i x^i``.  Every generator and the extractor agree on the
net names ``a0..a{m-1}``, ``b0..b{m-1}``, ``z0..z{m-1}``.
"""

from __future__ import annotations

from typing import List


def input_nets(m: int, prefix: str) -> List[str]:
    """Operand net names ``prefix0 .. prefix{m-1}`` (LSB first).

    >>> input_nets(3, "a")
    ['a0', 'a1', 'a2']
    """
    if m < 1:
        raise ValueError("bit-width must be >= 1")
    return [f"{prefix}{i}" for i in range(m)]


def output_nets(m: int, prefix: str = "z") -> List[str]:
    """Product net names ``z0 .. z{m-1}`` (LSB first)."""
    return input_nets(m, prefix)


def operand_value(nets: List[str], assignment: dict) -> int:
    """Pack a named-bit assignment back into an integer (LSB first)."""
    value = 0
    for idx, net in enumerate(nets):
        if assignment[net] & 1:
            value |= 1 << idx
    return value


def value_assignment(nets: List[str], value: int) -> dict:
    """Spread an integer over named bits (LSB first)."""
    return {net: (value >> idx) & 1 for idx, net in enumerate(nets)}
