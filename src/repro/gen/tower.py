"""Composite-field (tower) multiplier generator.

Implements GF((2^k)^2) multiplication as hardware would: three
GF(2^k) subfield multiplier blocks (a Karatsuba-style trick saves the
fourth), a constant-ν scaler, and XOR combiners — the structure of
compact AES S-box datapaths (Satoh/Canright).

The emitted netlist has the standard flat ports ``a0..a{2k-1}`` /
``z0..z{2k-1}``, so to a reverse engineer it is indistinguishable in
shape from a flat GF(2^{2k}) multiplier.  Functionally it *is* a
2^{2k}-element field multiplier — but in tower coordinates, not in
any polynomial basis of GF(2^{2k}).  Polynomial-basis extraction must
therefore reject it, and the diagnosis tests pin that down.
"""

from __future__ import annotations

from typing import List, Optional

from repro.fieldmath.bitpoly import bitpoly_degree, bitpoly_mod, bitpoly_str
from repro.fieldmath.gf2m import GF2m
from repro.fieldmath.tower import TowerField
from repro.gen.naming import input_nets, output_nets
from repro.netlist.build import NetlistBuilder
from repro.netlist.netlist import Netlist


def generate_tower(
    base_modulus: int,
    nu: Optional[int] = None,
    name: Optional[str] = None,
    balanced: bool = True,
) -> Netlist:
    """Gate-level GF((2^k)^2) multiplier.

    ``base_modulus`` is the subfield polynomial (degree k); ``nu`` the
    trace-1 constant of the extension quadratic ``Y^2 + Y + ν``
    (defaulting to the smallest).  Operands pack as ``(h << k) | l``.

    >>> net = generate_tower(0b111)              # GF((2^2)^2)
    >>> sorted(net.outputs)
    ['z0', 'z1', 'z2', 'z3']
    """
    k = bitpoly_degree(base_modulus)
    if k < 1:
        raise ValueError(
            f"subfield P(x) = {bitpoly_str(base_modulus)} has degree < 1"
        )
    tower = TowerField(GF2m(base_modulus), nu)
    m = 2 * k
    a_nets = input_nets(m, "a")
    b_nets = input_nets(m, "b")
    z_nets = output_nets(m)
    builder = NetlistBuilder(
        name or f"tower_k{k}",
        inputs=a_nets + b_nets,
        balanced_trees=balanced,
    )

    a_low, a_high = a_nets[:k], a_nets[k:]
    b_low, b_high = b_nets[:k], b_nets[k:]

    # Karatsuba over the tower: three subfield multiplications.
    ll = _emit_subfield_mult(builder, a_low, b_low, base_modulus)
    hh = _emit_subfield_mult(builder, a_high, b_high, base_modulus)
    sum_a = [builder.xor2(a_low[i], a_high[i]) for i in range(k)]
    sum_b = [builder.xor2(b_low[i], b_high[i]) for i in range(k)]
    cross = _emit_subfield_mult(builder, sum_a, sum_b, base_modulus)

    # Karatsuba identity: cross = ll + hh + (h1·l2 + h2·l1), so the
    # Y coordinate h1·h2 + h1·l2 + h2·l1 collapses to cross + ll.
    high = [builder.xor2(cross[i], ll[i]) for i in range(k)]
    # low = l1l2 + ν·h1h2.
    nu_hh = _emit_const_mult(builder, hh, tower.nu, base_modulus)
    low = [builder.xor2(ll[i], nu_hh[i]) for i in range(k)]

    for i in range(k):
        builder.buf(low[i], output=z_nets[i])
        builder.buf(high[i], output=z_nets[k + i])
    builder.set_outputs(z_nets)
    return builder.finish()


def _emit_subfield_mult(
    builder: NetlistBuilder,
    a_nets: List[str],
    b_nets: List[str],
    modulus: int,
) -> List[str]:
    """A Mastrovito-style GF(2^k) multiplier over arbitrary nets."""
    k = len(a_nets)
    reduced = [bitpoly_mod(1 << t, modulus) for t in range(2 * k - 1)]
    plane = {
        (j, i): builder.and2(a_nets[j], b_nets[i])
        for j in range(k)
        for i in range(k)
    }
    out = []
    for bit in range(k):
        taps = [
            plane[(j, i)]
            for j in range(k)
            for i in range(k)
            if (reduced[j + i] >> bit) & 1
        ]
        out.append(builder.xor_tree(taps))
    return out


def _emit_const_mult(
    builder: NetlistBuilder,
    nets: List[str],
    constant: int,
    modulus: int,
) -> List[str]:
    """Multiply a subfield coordinate vector by a field constant.

    Constant multiplication is GF(2)-linear: output bit ``t`` XORs
    every input bit ``i`` with ``[x^i · c mod P]_t = 1``.
    """
    k = len(nets)
    columns = [
        bitpoly_mod(_bitpoly_mul_small(1 << i, constant), modulus)
        for i in range(k)
    ]
    out = []
    for bit in range(k):
        taps = [nets[i] for i in range(k) if (columns[i] >> bit) & 1]
        out.append(builder.xor_tree(taps))
    return out


def _bitpoly_mul_small(lhs: int, rhs: int) -> int:
    product = 0
    shift = 0
    while rhs:
        if rhs & 1:
            product ^= lhs << shift
        rhs >>= 1
        shift += 1
    return product


def tower_reference(base_modulus: int, nu: Optional[int] = None) -> TowerField:
    """The word-level model matching :func:`generate_tower`'s encoding."""
    return TowerField(GF2m(base_modulus), nu)
