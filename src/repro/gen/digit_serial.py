"""Unrolled digit-serial multiplier generator.

Digit-serial datapaths are the standard area/latency compromise in ECC
hardware: ``d`` bits of the B operand are consumed per clock and the
accumulator is reduced *once per digit* rather than once per bit
(``d = 1`` degenerates to the interleaved bit-serial datapath, ``d = m``
to a fully parallel multiplier with one final reduction).  This
generator unrolls all ``ceil(m/d)`` iterations combinationally.

Per iteration (radix-2^d Horner, most significant digit first)::

    acc <- acc · x^d + D_j · A        (mod P)

the unreduced intermediate spans ``m + d - 1`` bit positions; the
out-field positions ``k >= m`` fold back through the precomputed
reduction rows ``x^k mod P(x)``.  Different digit sizes yield
structurally different netlists computing the identical function —
extraction must recover the same P(x) for every ``d`` (asserted by the
tests), which generalises the paper's algorithm-independence claim
along a knob its benchmarks never turn.
"""

from __future__ import annotations

from typing import List, Optional

from repro.fieldmath.bitpoly import bitpoly_degree, bitpoly_mod, bitpoly_str
from repro.gen.naming import input_nets, output_nets
from repro.netlist.build import NetlistBuilder
from repro.netlist.netlist import Netlist


def generate_digit_serial(
    modulus: int,
    digit_size: int = 4,
    name: Optional[str] = None,
    balanced: bool = True,
) -> Netlist:
    """Gate-level unrolled digit-serial multiplier for ``A*B mod P(x)``.

    >>> net = generate_digit_serial(0b10011, digit_size=2)
    >>> sorted(net.outputs)
    ['z0', 'z1', 'z2', 'z3']
    """
    m = bitpoly_degree(modulus)
    if m < 1:
        raise ValueError(f"P(x) = {bitpoly_str(modulus)} has degree < 1")
    if digit_size < 1:
        raise ValueError("digit_size must be >= 1")
    digit_size = min(digit_size, m)

    a_nets = input_nets(m, "a")
    b_nets = input_nets(m, "b")
    z_nets = output_nets(m)
    builder = NetlistBuilder(
        name or f"digitserial_d{digit_size}_m{m}",
        inputs=a_nets + b_nets,
        balanced_trees=balanced,
    )

    if m == 1:
        builder.and2("a0", "b0", output="z0")
        builder.set_outputs(z_nets)
        return builder.finish()

    digits = -(-m // digit_size)  # ceil(m / digit_size)
    width = m + digit_size  # unreduced accumulator span per iteration
    reduction_rows = [
        bitpoly_mod(1 << k, modulus) for k in range(width)
    ]

    acc: Optional[List[str]] = None
    for j in range(digits - 1, -1, -1):
        positions: List[List[str]] = [[] for _ in range(width)]
        if acc is not None:
            for i in range(m):
                positions[i + digit_size].append(acc[i])
        for t in range(digit_size):
            bit = j * digit_size + t
            if bit >= m:
                continue
            for i in range(m):
                positions[i + t].append(
                    builder.and2(b_nets[bit], a_nets[i])
                )
        acc = _reduce_positions(builder, positions, reduction_rows, m)

    assert acc is not None
    for i in range(m):
        builder.buf(acc[i], output=z_nets[i])
    builder.set_outputs(z_nets)
    return builder.finish()


def _reduce_positions(
    builder: NetlistBuilder,
    positions: List[List[str]],
    reduction_rows: List[int],
    m: int,
) -> List[str]:
    """Fold out-field positions back and XOR each column to one net.

    Every position ``k >= m`` contributes to the in-field columns given
    by the fully reduced row ``x^k mod P`` — one flat reduction level,
    no cascading, because the rows are precomputed modulo P.
    """
    overflow: List[Optional[str]] = []
    for k in range(m, len(positions)):
        overflow.append(
            builder.xor_tree(positions[k]) if positions[k] else None
        )
    out = []
    for i in range(m):
        taps = list(positions[i])
        for idx, net in enumerate(overflow):
            if net is not None and (reduction_rows[m + idx] >> i) & 1:
                taps.append(net)
        out.append(builder.xor_tree(taps))
    return out
