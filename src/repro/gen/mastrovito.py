"""Mastrovito multiplier generator.

The Mastrovito construction folds the modular reduction into the
product matrix: output bit ``z_i`` is directly the XOR of every partial
product ``a_j·b_k`` whose reduced weight ``x^{j+k} mod P(x)`` has bit
``i`` set.  Each output bit therefore has a *shallow* cone — one XOR
tree over a subset of the shared AND plane — which is exactly why the
paper's per-output backward rewriting is fast on these circuits
(Table I).
"""

from __future__ import annotations

from typing import List, Optional

from repro.fieldmath.bitpoly import bitpoly_degree, bitpoly_mod, bitpoly_str
from repro.gen.naming import input_nets, output_nets
from repro.gen.partial_products import emit_partial_products
from repro.netlist.build import NetlistBuilder
from repro.netlist.netlist import Netlist


def generate_mastrovito(
    modulus: int,
    name: Optional[str] = None,
    balanced: bool = True,
) -> Netlist:
    """Gate-level Mastrovito multiplier for ``Z = A*B mod P(x)``.

    ``modulus`` is P(x) as a bit mask; the field size is its degree.
    ``balanced`` selects balanced XOR trees (synthesis-like) versus
    linear XOR chains (naive-elaboration-like) — the function is
    identical, only the netlist shape differs.

    >>> net = generate_mastrovito(0b10011)       # GF(2^4), x^4+x+1
    >>> sorted(net.outputs)
    ['z0', 'z1', 'z2', 'z3']
    """
    m = bitpoly_degree(modulus)
    if m < 1:
        raise ValueError(f"P(x) = {bitpoly_str(modulus)} has degree < 1")
    a_nets = input_nets(m, "a")
    b_nets = input_nets(m, "b")
    z_nets = output_nets(m)
    builder = NetlistBuilder(
        name or f"mastrovito_m{m}",
        inputs=a_nets + b_nets,
        balanced_trees=balanced,
    )

    if m == 1:
        builder.and2("a0", "b0", output="z0")
        builder.set_outputs(z_nets)
        return builder.finish()

    plane = emit_partial_products(builder, a_nets, b_nets)

    # Mastrovito matrix: reduced weight of every product degree.
    reduced: List[int] = [
        bitpoly_mod(1 << k, modulus) for k in range(2 * m - 1)
    ]
    for i in range(m):
        column = [
            plane[(j, k)]
            for j in range(m)
            for k in range(m)
            if (reduced[j + k] >> i) & 1
        ]
        builder.xor_tree(column, output=z_nets[i])
    builder.set_outputs(z_nets)
    return builder.finish()
