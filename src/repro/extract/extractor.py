"""Algorithm 2 — extracting the irreducible polynomial P(x).

The flow (Section III, Example 2):

1. For each output bit ``z_i``, apply backward rewriting (Algorithm 1)
   to obtain its canonical GF(2) expression over the primary inputs.
2. Initialise ``P(x) = x^m`` (Theorem 3: x^m is always present).
3. For each bit i, add ``x^i`` to P(x) iff the entire out-field product
   set ``P_m`` occurs in the expression of ``z_i``.

The extractor is black-box over the implementation: Mastrovito,
Montgomery, schoolbook, synthesized/technology-mapped — anything that
computes ``A·B mod P(x)`` with the standard port naming.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.engine import ConeExpression
from repro.extract.outfield import outfield_products
from repro.fieldmath.bitpoly import bitpoly_str
from repro.fieldmath.irreducible import is_irreducible
from repro.gf2.polynomial import Gf2Poly
from repro.netlist.netlist import Netlist, NetlistError
from repro.rewrite.parallel import ExtractionRun, extract_expressions


class ExtractionError(RuntimeError):
    """The netlist does not look like an m-bit GF(2^m) multiplier."""


@dataclass
class ExtractionResult:
    """Everything Algorithm 2 learned about the design."""

    #: The recovered irreducible polynomial as a bit mask.
    modulus: int
    #: Field size (number of output bits).
    m: int
    #: Whether the recovered P(x) passes the Rabin irreducibility test.
    irreducible: bool
    #: Which output bits contained the full out-field set P_m.
    member_bits: List[int]
    #: The per-bit extraction run (expressions + stats).
    run: ExtractionRun
    #: Wall-clock time of the whole extraction (rewriting + analysis).
    total_time_s: float = 0.0

    @property
    def polynomial_str(self) -> str:
        """P(x) in the paper's notation, e.g. ``x^4 + x + 1``."""
        return bitpoly_str(self.modulus)

    def expression_of(self, bit: int) -> Gf2Poly:
        """Canonical expression of output bit ``z_bit``."""
        return self.run.expressions[f"z{bit}"]


def _multiplier_ports(netlist: Netlist) -> int:
    """Validate the standard a/b/z port naming; return m."""
    m = len(netlist.outputs)
    if m < 1:
        raise ExtractionError("netlist has no outputs")
    expected_outputs = {f"z{i}" for i in range(m)}
    if set(netlist.outputs) != expected_outputs:
        raise ExtractionError(
            f"outputs must be named z0..z{m - 1}, got {netlist.outputs}"
        )
    expected_inputs = {f"a{i}" for i in range(m)} | {
        f"b{i}" for i in range(m)
    }
    if set(netlist.inputs) != expected_inputs:
        raise ExtractionError(
            f"inputs must be named a0..a{m - 1}, b0..b{m - 1}; "
            f"got {sorted(netlist.inputs)[:6]}..."
        )
    return m


def extract_from_expressions(
    expressions: Dict[str, Gf2Poly], m: int
) -> Tuple[int, List[int]]:
    """Algorithm 2 lines 2 and 6-9 given already-extracted expressions.

    Returns ``(modulus, member_bits)``.
    """
    from repro.engine import ReferenceExpression

    return extract_from_cones(
        {
            output: ReferenceExpression(poly)
            for output, poly in expressions.items()
        },
        m,
    )


def extract_from_cones(
    cones: Mapping[str, ConeExpression], m: int
) -> Tuple[int, List[int]]:
    """Algorithm 2 lines 2 and 6-9 on backend-native expressions.

    The membership test runs in each backend's own representation —
    for the ``bitpack`` engine directly on the packed ``set[int]``,
    with the out-field products packed through the cone's interner —
    so no expression is decoded just to ask whether ``P_m`` occurs.
    """
    products = outfield_products(m)
    modulus = 1 << m  # line 2: P(x) initialised to x^m
    member_bits: List[int] = []
    for bit in range(m):
        if cones[f"z{bit}"].contains_products(products):
            modulus |= 1 << bit  # line 7: P(x) += x^i
            member_bits.append(bit)
    return modulus, member_bits


def result_from_run(
    run: ExtractionRun, m: int, total_time_s: float = 0.0
) -> ExtractionResult:
    """Algorithm 2's analysis phase on an existing extraction run.

    Shared by the direct entry point below and the service layer's
    checkpointed jobs (:mod:`repro.service.jobs`), which assemble the
    run themselves from resumed + fresh shards.
    """
    if run.cones:
        modulus, member_bits = extract_from_cones(run.cones, m)
    else:  # runs built by hand may carry only decoded expressions
        modulus, member_bits = extract_from_expressions(run.expressions, m)
    return ExtractionResult(
        modulus=modulus,
        m=m,
        irreducible=is_irreducible(modulus),
        member_bits=member_bits,
        run=run,
        total_time_s=total_time_s,
    )


def multiplier_field_size(netlist: Netlist) -> int:
    """Validate the a/b/z multiplier port contract; return m."""
    return _multiplier_ports(netlist)


def extract_irreducible_polynomial(
    netlist: Netlist,
    jobs: int = 1,
    term_limit: Optional[int] = None,
    measure_memory: bool = False,
    engine: str = "reference",
    cache=None,
    compile_cache=None,
    fused: bool = False,
    on_result=None,
    telemetry=None,
    max_bytes=None,
    cone_cache=None,
) -> ExtractionResult:
    """Reverse engineer P(x) from a gate-level GF(2^m) multiplier.

    ``jobs`` controls the parallel effort (the paper runs 16 threads);
    ``term_limit`` bounds intermediate expression size per bit (the
    paper's memory-out condition).  ``engine`` selects the rewriting
    backend (see :mod:`repro.engine`); every backend recovers the same
    P(x).

    ``cache`` (optionally) is a
    :class:`repro.service.cache.ResultCache` — or anything with its
    ``get_extraction`` / ``put_extraction`` contract: a cached result
    for a structurally identical netlist is returned without rewriting
    a single gate, and fresh results are stored for the next caller.
    ``compile_cache`` (typically the same cache) separately persists
    the *engine's compiled program*: on a result-cache miss a
    compiling backend (bitpack/aig/vector) then skips its one-time
    netlist compile whenever the structure was ever compiled before —
    the service runner passes its cache for both.

    ``fused=True`` extracts all m bits in one fused substitution
    sweep (see :func:`repro.rewrite.parallel.extract_expressions`):
    fastest with ``engine="vector"``, a clean per-bit fallback on
    every other backend, bit-identical results either way.  ``jobs``
    is ignored in fused mode.  ``max_bytes`` caps the fused sweep's
    live matrix — past the budget it spills to disk and streams out
    of core, bit-identical again (``--max-ram`` on the CLI).

    ``on_result`` fires once per completed bit with ``(output, cone,
    stats)`` — the progress feed of the HTTP API's job endpoints —
    and ``telemetry`` selects the :class:`repro.telemetry.Telemetry`
    registry the run's spans and counters land in (default: the
    active one).  A cache hit short-circuits both.

    ``cone_cache`` (typically the same cache again) enables the
    incremental tier below the whole-netlist cache: on a result-cache
    miss, output cones whose Merkle digests already have stored
    results are served from the per-cone cache and only the dirty
    cones are rewritten — the ECO path
    (:mod:`repro.service.eco`) relies on this to re-audit an edited
    netlist at ~one-cone cost.

    >>> from repro.gen.mastrovito import generate_mastrovito
    >>> result = extract_irreducible_polynomial(generate_mastrovito(0b10011))
    >>> result.polynomial_str
    'x^4 + x + 1'
    >>> extract_irreducible_polynomial(
    ...     generate_mastrovito(0b10011), engine="bitpack"
    ... ).polynomial_str
    'x^4 + x + 1'
    """
    started = time.perf_counter()
    m = _multiplier_ports(netlist)
    key = None
    if cache is not None:
        key = cache.fingerprint(netlist)  # once: strash + hash is O(n)
        cached = cache.get_extraction(key)
        if cached is not None:
            return cached
    run = extract_expressions(
        netlist,
        outputs=[f"z{i}" for i in range(m)],
        jobs=jobs,
        term_limit=term_limit,
        measure_memory=measure_memory,
        engine=engine,
        on_result=on_result,
        compile_cache=compile_cache,
        fused=fused,
        telemetry=telemetry,
        max_bytes=max_bytes,
        cone_cache=cone_cache,
    )
    result = result_from_run(run, m)
    # Stamp after the Algorithm-2 analysis phase so the total covers
    # rewriting *and* membership/irreducibility, as it always has.
    result.total_time_s = time.perf_counter() - started
    if cache is not None:
        cache.put_extraction(key, result)
    return result
