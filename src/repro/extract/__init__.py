"""Irreducible-polynomial extraction (Algorithm 2) and verification.

``outfield``
    the first out-field product set ``P_m = {a_i·b_j : i+j = m}``;
``extractor``
    Algorithm 2 — extract every output bit's expression, then decide
    ``x^i ∈ P(x)`` by testing whether ``P_m`` appears in bit i's
    expression (Theorem 3);
``verify``
    the closing step of the paper's flow — build the golden
    specification from the extracted P(x) and check per-bit algebraic
    equivalence, plus an independent simulation cross-check;
``report``
    human-readable extraction/verification reports;
``diagnose``
    full triage of unknown netlists (verified multiplier / buggy /
    wrong basis / malformed), with counterexamples.
"""

from repro.extract.outfield import outfield_products
from repro.extract.extractor import (
    ExtractionError,
    ExtractionResult,
    extract_irreducible_polynomial,
    extract_from_cones,
    extract_from_expressions,
)
from repro.extract.verify import VerificationReport, verify_multiplier
from repro.extract.report import format_extraction_report
from repro.extract.diagnose import Diagnosis, Verdict, diagnose
from repro.extract.squarer import (
    SquarerExtractionResult,
    extract_squarer_polynomial,
)

__all__ = [
    "outfield_products",
    "ExtractionError",
    "ExtractionResult",
    "extract_irreducible_polynomial",
    "extract_from_cones",
    "extract_from_expressions",
    "VerificationReport",
    "verify_multiplier",
    "format_extraction_report",
    "Diagnosis",
    "Verdict",
    "diagnose",
    "SquarerExtractionResult",
    "extract_squarer_polynomial",
]
