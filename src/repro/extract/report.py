"""Human-readable extraction and verification reports.

These are the strings the CLI and the examples print; the benchmark
harnesses use :mod:`repro.analysis.tables` instead for the paper-style
rows.
"""

from __future__ import annotations

from typing import Optional

from repro.extract.extractor import ExtractionResult
from repro.extract.verify import VerificationReport
from repro.fieldmath.bitpoly import bitpoly_str


def format_extraction_report(
    result: ExtractionResult,
    verification: Optional[VerificationReport] = None,
    netlist_gates: Optional[int] = None,
) -> str:
    """Summarise one reverse-engineering run.

    >>> from repro.gen.mastrovito import generate_mastrovito
    >>> from repro.extract.extractor import extract_irreducible_polynomial
    >>> net = generate_mastrovito(0b111)
    >>> print(format_extraction_report(
    ...     extract_irreducible_polynomial(net),
    ...     netlist_gates=len(net)))       # doctest: +ELLIPSIS
    reverse engineering report
    ==========================
    field size            : GF(2^2)
    ...
    """
    lines = ["reverse engineering report", "=" * 26]
    lines.append(f"field size            : GF(2^{result.m})")
    if netlist_gates is not None:
        lines.append(f"# eqns (gates)        : {netlist_gates}")
    lines.append(f"extracted P(x)        : {result.polynomial_str}")
    lines.append(
        f"irreducible           : {'yes' if result.irreducible else 'NO'}"
    )
    lines.append(
        "P_m found in bits     : "
        + (", ".join(f"z{bit}" for bit in result.member_bits) or "(none)")
    )
    lines.append(f"threads               : {result.run.jobs}")
    lines.append(f"extraction runtime    : {result.total_time_s:.3f} s")
    lines.append(f"peak expression terms : {result.run.peak_terms}")
    if result.run.peak_memory_bytes is not None:
        mem_mb = result.run.peak_memory_bytes / (1024 * 1024)
        lines.append(f"peak traced memory    : {mem_mb:.1f} MB")
    if verification is not None:
        lines.append(f"verification          : {verification}")
        if verification.simulation_ok is not None:
            lines.append(
                f"simulation vectors    : {verification.simulation_vectors}"
                f" ({'ok' if verification.simulation_ok else 'MISMATCH'})"
            )
    return "\n".join(lines)
