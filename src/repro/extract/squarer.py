"""Extension: recovering P(x) from a dedicated squarer circuit.

The paper's Algorithm 2 keys on the out-field *products* ``a_i·b_j``,
so it cannot say anything about the linear circuits that dominate ECC
datapaths — dedicated squarers contain no products at all.  This
module extends the idea: backward rewriting still yields the canonical
per-bit expressions, which for a squarer are sets of single variables
encoding the *squaring matrix* ``Q(P)`` with columns
``x^{2i} mod P(x)``.  P(x) is then recovered from the first out-field
column:

* **even m** — column ``i = m/2`` is ``x^m mod P = P'(x)`` verbatim;
* **odd m** — column ``i = (m+1)/2`` is ``x^{m+1} mod P``, i.e.
  ``(P' << 1) mod P``; the shift-XOR recurrence inverts it bit by bit.

The recovered P(x) is then confirmed by rebuilding the full matrix and
comparing — so a fault anywhere in the squarer surfaces as a verdict
mismatch, exactly like the multiplier flow's golden-model check.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

from repro.fieldmath.bitpoly import bitpoly_str
from repro.fieldmath.irreducible import is_irreducible
from repro.gen.squarer import squaring_matrix
from repro.netlist.netlist import Netlist
from repro.rewrite.backward import backward_rewrite, backward_rewrite_multi


class SquarerExtractionError(RuntimeError):
    """The netlist is not shaped like a GF(2^m) squarer."""


@dataclass
class SquarerExtractionResult:
    """Everything learned from a squarer netlist."""

    #: Recovered P(x) (bit mask), or None when no candidate exists.
    modulus: Optional[int]
    m: int
    #: The observed matrix: observed[i] = output mask fed by input a_i.
    observed_columns: List[int]
    #: Whether the recovered P(x) is irreducible.
    irreducible: bool
    #: Whether the full observed matrix matches squaring_matrix(P).
    verified: bool
    total_time_s: float = 0.0

    @property
    def polynomial_str(self) -> str:
        if self.modulus is None:
            return "(none)"
        return bitpoly_str(self.modulus)


def extract_squarer_polynomial(
    netlist: Netlist,
    cache=None,
    engine: str = "reference",
    compile_cache=None,
    fused: bool = False,
) -> SquarerExtractionResult:
    """Recover P(x) from a gate-level squarer.

    ``cache`` (optionally) is a
    :class:`repro.service.cache.ResultCache` — or anything with its
    ``get_squarer`` / ``put_squarer`` / ``fingerprint`` contract —
    keyed, like every other artifact, by the strash-invariant content
    fingerprint: a structurally identical squarer is answered without
    rewriting a single gate.

    ``engine`` selects the rewriting backend and ``compile_cache``
    persists its one-time netlist compile, exactly as on the
    multiplier path — a squarer-heavy campaign no longer pays a full
    cold compile per design while the multiplier branch rides the
    cache.  ``fused=True`` rewrites all m bits in one fused sweep
    (:func:`repro.rewrite.backward.backward_rewrite_multi`).

    >>> from repro.gen.squarer import generate_squarer
    >>> extract_squarer_polynomial(generate_squarer(0b10011)).polynomial_str
    'x^4 + x + 1'
    """
    started = time.perf_counter()
    key = None
    if cache is not None:
        key = cache.fingerprint(netlist)  # once: AIG lowering is O(n)
        cached = cache.get_squarer(key)
        if cached is not None:
            return cached
    m = len(netlist.outputs)
    expected_inputs = {f"a{i}" for i in range(m)}
    if set(netlist.inputs) != expected_inputs:
        raise SquarerExtractionError(
            f"inputs must be a0..a{m - 1}; got "
            f"{sorted(netlist.inputs)[:6]}"
        )
    expected_outputs = {f"z{i}" for i in range(m)}
    if set(netlist.outputs) != expected_outputs:
        raise SquarerExtractionError(
            f"outputs must be z0..z{m - 1}, got {netlist.outputs}"
        )

    # Backward rewriting per output bit (Algorithm 1, unchanged);
    # fused mode batches every bit into one multi-root engine call,
    # per-bit mode rewrites lazily so a non-squarer fails fast.
    columns = [0] * m
    outputs = [f"z{j}" for j in range(m)]
    if fused:
        rewritten = backward_rewrite_multi(
            netlist, outputs, engine=engine, compile_cache=compile_cache
        )
    else:
        rewritten = None
    for j, output in enumerate(outputs):
        if rewritten is not None:
            poly, _stats = rewritten[output]
        else:
            poly, _stats = backward_rewrite(
                netlist,
                output,
                engine=engine,
                compile_cache=compile_cache,
            )
        for monomial in poly.monomials:
            if len(monomial) != 1:
                raise SquarerExtractionError(
                    f"output z{j} is not linear in the inputs "
                    f"(monomial {sorted(monomial)}) — not a squarer"
                )
            (name,) = monomial
            columns[int(name[1:])] |= 1 << j

    modulus = _polynomial_from_columns(columns, m)
    verified = (
        modulus is not None and squaring_matrix(modulus) == columns
    )
    result = SquarerExtractionResult(
        modulus=modulus,
        m=m,
        observed_columns=columns,
        irreducible=bool(modulus) and is_irreducible(modulus),
        verified=verified,
        total_time_s=time.perf_counter() - started,
    )
    if cache is not None:
        cache.put_squarer(key, result)
    return result


def _polynomial_from_columns(columns: List[int], m: int) -> Optional[int]:
    """Invert the first out-field column back to P(x)."""
    if m == 1:
        # z0 = a0; every degree-1 mask squares the same way.  x + 1 is
        # the canonical irreducible choice.
        return 0b11 if columns == [1] else None
    if m % 2 == 0:
        low = columns[m // 2]  # x^m mod P = P'(x)
        return (1 << m) | low
    # Odd m: r = x^{m+1} mod P = (P' << 1) mod P.  Writing q = P',
    # either r = q << 1 (no overflow) or q<<1 ^ q = r ^ x^m (one
    # reduction step, since bit0(P) = 1 marks the reduced case).
    r = columns[(m + 1) // 2]
    if not r & 1:
        candidate = (1 << m) | (r >> 1)
        return candidate
    s = r ^ (1 << m)
    q = 0
    previous = 0
    for bit in range(m):
        current = ((s >> bit) & 1) ^ previous
        q |= current << bit
        previous = current
    return (1 << m) | q
