"""End-to-end netlist triage built on extraction + verification.

``extract_irreducible_polynomial`` answers one narrow question; users
auditing unknown netlists need the full decision tree:

* Is this even shaped like a GF(2^m) multiplier (ports, combinational
  cone completeness)?
* Did Algorithm 2 recover an *irreducible* P(x)?
* Does the implementation actually match ``A·B mod P(x)`` — the
  paper's golden-model check, which catches both buggy multipliers
  and correct multipliers in a different basis (normal-basis designs
  can fool the membership test alone; see the test suite)?

:func:`diagnose` runs that tree and returns a structured verdict with
evidence (failing bits, a concrete counterexample vector when one
exists).
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass
from typing import Dict, Optional

from repro.extract.extractor import (
    ExtractionError,
    ExtractionResult,
    extract_irreducible_polynomial,
)
from repro.extract.verify import VerificationReport, verify_multiplier
from repro.fieldmath.bitpoly import bitpoly_str
from repro.fieldmath.gf2m import GF2m
from repro.gen.naming import value_assignment
from repro.netlist.netlist import Netlist
from repro.rewrite.backward import BackwardRewriteError, TermLimitExceeded


class Verdict(enum.Enum):
    """Outcome classes of a netlist diagnosis."""

    #: Extraction succeeded, P(x) irreducible, golden model matches.
    VERIFIED_MULTIPLIER = "verified-multiplier"
    #: Single-operand ports; the squarer extension recovered and
    #: verified P(x) against the full squaring matrix.
    VERIFIED_SQUARER = "verified-squarer"
    #: Single-operand ports but the squaring matrix matches no P(x).
    NOT_A_SQUARER = "not-a-squarer"
    #: Extraction produced a reducible mask — not a field multiplier
    #: in polynomial basis (wrong basis, heavy bug, or not a multiplier).
    REDUCIBLE_POLYNOMIAL = "reducible-polynomial"
    #: P(x) looked plausible but the implementation differs from
    #: ``A·B mod P(x)`` — buggy multiplier or non-polynomial basis.
    NOT_EQUIVALENT = "not-equivalent"
    #: Ports are not the standard a/b/z multiplier interface.
    MALFORMED_PORTS = "malformed-ports"
    #: Backward rewriting failed (incomplete cone, non-combinational).
    REWRITE_FAILED = "rewrite-failed"
    #: The intermediate expressions outgrew the configured term limit.
    MEMORY_OUT = "memory-out"


@dataclass
class Diagnosis:
    """Structured triage result for one netlist."""

    verdict: Verdict
    netlist_name: str
    #: Present whenever extraction ran to completion.
    extraction: Optional[ExtractionResult] = None
    #: Present whenever the golden-model check ran.
    verification: Optional[VerificationReport] = None
    #: An input assignment on which the implementation disagrees with
    #: the golden model (None when equivalent or not applicable).
    counterexample: Optional[Dict[str, int]] = None
    #: Human-readable explanation of the verdict.
    reason: str = ""
    runtime_s: float = 0.0

    @property
    def is_clean(self) -> bool:
        """True only for a verified multiplier or squarer."""
        return self.verdict in (
            Verdict.VERIFIED_MULTIPLIER,
            Verdict.VERIFIED_SQUARER,
        )

    def render(self) -> str:
        """Multi-line report for CLI / example output."""
        lines = [
            f"diagnosis of {self.netlist_name}",
            "=" * (13 + len(self.netlist_name)),
            f"verdict : {self.verdict.value}",
            f"reason  : {self.reason}",
        ]
        if self.extraction is not None:
            lines.append(
                f"P(x)    : {self.extraction.polynomial_str}"
                + ("" if self.extraction.irreducible else "  (reducible)")
            )
        if self.verification is not None:
            failing = self.verification.failing_bits
            if failing:
                shown = ", ".join(f"z{bit}" for bit in failing[:8])
                lines.append(f"bad bits: {shown}")
        if self.counterexample is not None:
            pairs = ", ".join(
                f"{name}={value}"
                for name, value in sorted(self.counterexample.items())
            )
            lines.append(f"counterexample: {pairs}")
        lines.append(f"runtime : {self.runtime_s:.3f} s")
        return "\n".join(lines)


def diagnose(
    netlist: Netlist,
    jobs: int = 1,
    term_limit: Optional[int] = None,
    find_counterexample: bool = True,
    engine: str = "reference",
    cache=None,
    compile_cache=None,
    fused: bool = False,
    max_bytes=None,
    cone_cache=None,
) -> Diagnosis:
    """Triage a netlist: verified multiplier, buggy, or out of scope.

    ``engine`` selects the rewriting backend (see :mod:`repro.engine`);
    the verdict is backend-independent.  ``cache`` (optionally, a
    :class:`repro.service.cache.ResultCache`) is threaded through to
    the extraction phases — the multiplier *and* squarer branches — so
    a re-diagnosed structural duplicate never rewrites a gate.
    ``compile_cache`` is forwarded the same way so a compiling backend
    skips its one-time netlist compile on known structures (see
    :func:`~repro.extract.extractor.extract_irreducible_polynomial`);
    both reach the squarer branch too.  ``fused=True`` runs the
    extraction as one fused multi-cone sweep (fastest with
    ``engine="vector"``); the verdict is mode-independent.
    ``cone_cache`` enables the per-output-cone incremental tier: when
    a baseline version of this netlist was already extracted, blame
    analysis of an edited version rewrites only the cones the edit
    touched (the ECO path — see :mod:`repro.service.eco`).

    >>> from repro.gen.mastrovito import generate_mastrovito
    >>> diagnose(generate_mastrovito(0b10011)).verdict.value
    'verified-multiplier'
    """
    started = time.perf_counter()

    def finish(diagnosis: Diagnosis) -> Diagnosis:
        diagnosis.runtime_s = time.perf_counter() - started
        return diagnosis

    if _looks_like_squarer(netlist):
        return finish(
            _diagnose_squarer(
                netlist,
                cache=cache,
                engine=engine,
                compile_cache=compile_cache,
                fused=fused,
            )
        )

    try:
        result = extract_irreducible_polynomial(
            netlist,
            jobs=jobs,
            term_limit=term_limit,
            engine=engine,
            cache=cache,
            compile_cache=compile_cache,
            fused=fused,
            max_bytes=max_bytes,
            cone_cache=cone_cache,
        )
    except ExtractionError as error:
        return finish(
            Diagnosis(
                verdict=Verdict.MALFORMED_PORTS,
                netlist_name=netlist.name,
                reason=str(error),
            )
        )
    except TermLimitExceeded as error:
        return finish(
            Diagnosis(
                verdict=Verdict.MEMORY_OUT,
                netlist_name=netlist.name,
                reason=str(error),
            )
        )
    except BackwardRewriteError as error:
        return finish(
            Diagnosis(
                verdict=Verdict.REWRITE_FAILED,
                netlist_name=netlist.name,
                reason=str(error),
            )
        )

    if not result.irreducible:
        return finish(
            Diagnosis(
                verdict=Verdict.REDUCIBLE_POLYNOMIAL,
                netlist_name=netlist.name,
                extraction=result,
                reason=(
                    f"recovered mask {result.polynomial_str} is reducible; "
                    "no polynomial-basis GF(2^m) multiplier produces it"
                ),
            )
        )

    verification = verify_multiplier(netlist, result, engine=engine)
    if verification.equivalent:
        return finish(
            Diagnosis(
                verdict=Verdict.VERIFIED_MULTIPLIER,
                netlist_name=netlist.name,
                extraction=result,
                verification=verification,
                reason=(
                    f"implementation matches A*B mod "
                    f"{bitpoly_str(result.modulus)}"
                ),
            )
        )

    counterexample = None
    if find_counterexample:
        counterexample = _find_counterexample(netlist, result)
    return finish(
        Diagnosis(
            verdict=Verdict.NOT_EQUIVALENT,
            netlist_name=netlist.name,
            extraction=result,
            verification=verification,
            counterexample=counterexample,
            reason=(
                "extracted P(x) is irreducible but the implementation "
                "does not compute A*B mod P(x) — buggy multiplier or "
                "non-polynomial-basis design"
            ),
        )
    )


def _looks_like_squarer(netlist: Netlist) -> bool:
    """Single-operand multiplier ports: inputs a0.. only, outputs z0..

    Two-operand netlists (with b inputs) always take the multiplier
    path, including malformed ones — this routing only fires on the
    exact squarer port shape.
    """
    m = len(netlist.outputs)
    if m < 1:
        return False
    return set(netlist.inputs) == {f"a{i}" for i in range(m)} and set(
        netlist.outputs
    ) == {f"z{i}" for i in range(m)}


def _diagnose_squarer(
    netlist: Netlist,
    cache=None,
    engine: str = "reference",
    compile_cache=None,
    fused: bool = False,
) -> Diagnosis:
    """The squarer branch of the decision tree."""
    from repro.extract.squarer import (
        SquarerExtractionError,
        extract_squarer_polynomial,
    )

    try:
        result = extract_squarer_polynomial(
            netlist,
            cache=cache,
            engine=engine,
            compile_cache=compile_cache,
            fused=fused,
        )
    except SquarerExtractionError as error:
        return Diagnosis(
            verdict=Verdict.NOT_A_SQUARER,
            netlist_name=netlist.name,
            reason=str(error),
        )
    except BackwardRewriteError as error:
        return Diagnosis(
            verdict=Verdict.REWRITE_FAILED,
            netlist_name=netlist.name,
            reason=str(error),
        )
    if result.verified and result.irreducible:
        return Diagnosis(
            verdict=Verdict.VERIFIED_SQUARER,
            netlist_name=netlist.name,
            reason=(
                f"implementation matches A^2 mod "
                f"{bitpoly_str(result.modulus)}"
            ),
        )
    return Diagnosis(
        verdict=Verdict.NOT_A_SQUARER,
        netlist_name=netlist.name,
        reason=(
            "linear circuit, but its matrix is not the squaring matrix "
            f"of any irreducible P(x) (closest candidate: "
            f"{result.polynomial_str})"
        ),
    )


def _find_counterexample(
    netlist: Netlist, result: ExtractionResult, max_values: int = 64
) -> Optional[Dict[str, int]]:
    """Search operand pairs for a disagreement with the golden model.

    Exhaustive for small m, bounded sweep otherwise; the algebraic
    verdict already proved a mismatch exists, the sweep just makes it
    concrete (it can miss one when the operand space is large).
    """
    m = result.m
    field = GF2m(result.modulus, check_irreducible=False)
    a_nets = [f"a{i}" for i in range(m)]
    b_nets = [f"b{i}" for i in range(m)]
    bound = min(1 << m, max_values)
    for a_value in range(bound):
        for b_value in range(bound):
            assignment = dict(value_assignment(a_nets, a_value))
            assignment.update(value_assignment(b_nets, b_value))
            values = netlist.simulate(assignment)
            got = sum(values[f"z{i}"] << i for i in range(m))
            if got != field.mul(a_value, b_value):
                return assignment
    return None
