"""The first out-field product set ``P_m`` (Theorem 3).

Out-field products are the partial products ``a_i·b_j`` with
``i + j >= m`` — they belong to product coefficients ``s_{i+j}`` that
must be reduced modulo P(x).  The *first* out-field set is the one of
weight exactly m::

    P_m = { a_{m-1}·b_1, a_{m-2}·b_2, ..., a_1·b_{m-1} }

Since ``s_m·x^m mod P(x) = s_m·P'(x)`` with ``P(x) = x^m + P'(x)``,
the entire set P_m appears in the expression of output bit ``z_i``
exactly when ``x^i`` is a term of P'(x) — the membership test of
Algorithm 2.
"""

from __future__ import annotations

from typing import List

from repro.gf2.monomial import Monomial


def outfield_products(
    m: int, a_prefix: str = "a", b_prefix: str = "b"
) -> List[Monomial]:
    """The monomials of ``P_m`` for an m-bit multiplier.

    For ``m = 1`` the set is empty (no index pair sums to 1 inside the
    operand range); Algorithm 2's membership test is then vacuously
    true for bit 0, correctly yielding ``P(x) = x + 1`` — the only
    irreducible polynomial of degree 1 with a constant term.

    >>> sorted(sorted(mono) for mono in outfield_products(3))
    [['a1', 'b2'], ['a2', 'b1']]
    """
    if m < 1:
        raise ValueError("m must be >= 1")
    return [
        frozenset({f"{a_prefix}{i}", f"{b_prefix}{m - i}"})
        for i in range(1, m)
    ]
