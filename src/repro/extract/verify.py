"""Verification against the golden model built from the extracted P(x).

The paper's flow "automatically checks the equivalence between the
implementation with a golden implementation constructed using the
extracted irreducible polynomial P(x)".  Because backward rewriting
already produced the *canonical* expression of every output bit, the
equivalence check is a per-bit comparison against the specification
expressions of ``A·B mod P(x)`` (the golden Mastrovito implementation's
canonical form) — no additional rewriting needed.

An independent bit-parallel simulation cross-check (exhaustive for
small m, randomised otherwise) guards the verifier itself against
modelling bugs: algebraic equivalence and simulation must agree.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.engine import get_engine
from repro.extract.extractor import ExtractionResult
from repro.fieldmath.bitpoly import bitpoly_str
from repro.fieldmath.gf2m import GF2m
from repro.gen.naming import input_nets
from repro.netlist.netlist import Netlist
from repro.rewrite.signature import spec_expressions


@dataclass
class VerificationReport:
    """Outcome of the golden-model equivalence check."""

    #: P(x) the golden model was built from.
    modulus: int
    #: Per-bit algebraic equivalence verdicts (bit -> equal?).
    algebraic: Dict[int, bool]
    #: Whether the extracted P(x) is irreducible (a field at all).
    irreducible: bool
    #: Simulation cross-check verdict (None when skipped).
    simulation_ok: Optional[bool]
    #: Number of simulation vectors compared.
    simulation_vectors: int
    runtime_s: float = 0.0

    @property
    def equivalent(self) -> bool:
        """True when every output bit matches the golden model."""
        return all(self.algebraic.values()) and self.simulation_ok is not False

    @property
    def failing_bits(self) -> List[int]:
        return sorted(bit for bit, ok in self.algebraic.items() if not ok)

    def __str__(self) -> str:
        verdict = "EQUIVALENT" if self.equivalent else "NOT EQUIVALENT"
        detail = ""
        if not self.equivalent and self.failing_bits:
            detail = f" (bits {self.failing_bits[:8]} differ)"
        return (
            f"{verdict}: implementation vs golden A*B mod "
            f"{bitpoly_str(self.modulus)}{detail}"
        )


def verify_multiplier(
    netlist: Netlist,
    result: ExtractionResult,
    simulate: bool = True,
    max_exhaustive_m: int = 6,
    random_vectors: int = 512,
    seed: int = 2017,
    engine: Optional[str] = None,
) -> VerificationReport:
    """Check the implementation against ``A·B mod P(x)`` for the
    extracted P(x).

    Algebraic check: the canonical per-bit expressions from backward
    rewriting must equal the specification expressions derived from
    P(x).  Simulation check: exhaustive for ``m <= max_exhaustive_m``,
    otherwise ``random_vectors`` random operand pairs, compared against
    the word-level :class:`~repro.fieldmath.gf2m.GF2m` reference.

    ``engine`` selects the representation of the algebraic comparison:
    ``None`` (default) keeps the backend of the extraction run — for a
    ``bitpack`` run the spec monomials are packed through each cone's
    interner and compared against the packed sets, never decoding the
    implementation expressions; ``"reference"`` forces the decoded
    :class:`~repro.gf2.polynomial.Gf2Poly` comparison.  The verdict is
    backend-independent.

    >>> from repro.gen.montgomery import generate_montgomery
    >>> from repro.extract.extractor import extract_irreducible_polynomial
    >>> net = generate_montgomery(0b1011)         # GF(2^3), x^3+x+1
    >>> res = extract_irreducible_polynomial(net)
    >>> verify_multiplier(net, res).equivalent
    True
    """
    started = time.perf_counter()
    if engine is not None:
        engine = get_engine(engine).name  # validate the selector
    m = result.m
    spec = spec_expressions(result.modulus)
    cones = result.run.cones
    if cones and engine != "reference":
        algebraic = {
            bit: cones[f"z{bit}"].equals_poly(spec[bit])
            for bit in range(m)
        }
    else:
        algebraic = {
            bit: result.run.expressions[f"z{bit}"] == spec[bit]
            for bit in range(m)
        }

    simulation_ok: Optional[bool] = None
    vectors = 0
    if simulate:
        simulation_ok, vectors = _simulation_check(
            netlist,
            result.modulus,
            m,
            max_exhaustive_m=max_exhaustive_m,
            random_vectors=random_vectors,
            seed=seed,
        )

    return VerificationReport(
        modulus=result.modulus,
        algebraic=algebraic,
        irreducible=result.irreducible,
        simulation_ok=simulation_ok,
        simulation_vectors=vectors,
        runtime_s=time.perf_counter() - started,
    )


def _simulation_check(
    netlist: Netlist,
    modulus: int,
    m: int,
    max_exhaustive_m: int,
    random_vectors: int,
    seed: int,
) -> tuple:
    """Compare the netlist against GF2m.mul on concrete operands.

    Uses bit-parallel simulation: many operand pairs are packed into
    the lanes of each net value, so even the exhaustive m=6 check
    (4096 pairs) is a handful of netlist traversals.
    """
    field = GF2m(modulus, check_irreducible=False)
    a_nets = input_nets(m, "a")
    b_nets = input_nets(m, "b")

    if m <= max_exhaustive_m:
        pairs = [
            (a, b) for a in range(1 << m) for b in range(1 << m)
        ]
    else:
        rng = random.Random(seed)
        top = (1 << m) - 1
        pairs = [
            (rng.randint(0, top), rng.randint(0, top))
            for _ in range(random_vectors)
        ]
        # Always include the classic corner operands.
        pairs.extend([(0, 0), (1, 1), (top, top), (1, top)])

    lane_width = 1 << 12  # simulate up to 4096 pairs per pass
    for start in range(0, len(pairs), lane_width):
        chunk = pairs[start : start + lane_width]
        width = len(chunk)
        assignment = {}
        for idx, net in enumerate(a_nets):
            packed = 0
            for lane, (a_val, _) in enumerate(chunk):
                if (a_val >> idx) & 1:
                    packed |= 1 << lane
            assignment[net] = packed
        for idx, net in enumerate(b_nets):
            packed = 0
            for lane, (_, b_val) in enumerate(chunk):
                if (b_val >> idx) & 1:
                    packed |= 1 << lane
            assignment[net] = packed
        outputs = netlist.simulate(assignment, width=width)
        for lane, (a_val, b_val) in enumerate(chunk):
            expected = field.mul(a_val, b_val)
            actual = 0
            for idx in range(m):
                if (outputs[f"z{idx}"] >> lane) & 1:
                    actual |= 1 << idx
            if actual != expected:
                return False, start + lane + 1
    return True, len(pairs)
