"""Word-level Montgomery multiplication over GF(2^m).

Montgomery multiplication computes ``MM(a, b) = a * b * x^{-m} mod P``
— the extra ``x^{-m}`` factor is what makes the bit-serial hardware
loop carry-free.  A full multiplier composes two Montgomery steps:

    ``MM(MM(a, b), R2) = a * b mod P``   with ``R2 = x^{2m} mod P``

This module is the *reference model* for the gate-level generator in
:mod:`repro.gen.montgomery`: the unrolled netlist must agree with
:func:`mont_mul` on every input (tested exhaustively for small m and
randomly for large m).
"""

from __future__ import annotations

from repro.fieldmath.bitpoly import bitpoly_degree, bitpoly_mod


def mont_mul(lhs: int, rhs: int, modulus: int) -> int:
    """Bit-serial Montgomery product ``lhs * rhs * x^{-m} mod modulus``.

    Implements the classic MSB-of-nothing, LSB-driven loop::

        C = 0
        for i in 0..m-1:
            C = C + a_i * B          # conditional XOR
            C = (C + c_0 * P) / x    # make C divisible by x, shift

    After m iterations ``C = A*B*x^{-m} mod P`` with ``deg C < m``.

    >>> P = 0b10011                       # x^4 + x + 1
    >>> mont_mul(0b0001, 0b0001, P)       # 1 * 1 * x^-4 = x^-4 mod P
    12
    """
    m = bitpoly_degree(modulus)
    if m < 1:
        raise ValueError("modulus must have degree >= 1")
    mask = (1 << m) - 1
    if lhs & ~mask or rhs & ~mask:
        raise ValueError("operands must be reduced field elements")
    acc = 0
    for i in range(m):
        if (lhs >> i) & 1:
            acc ^= rhs
        if acc & 1:
            acc ^= modulus
        acc >>= 1
    return acc


def mont_r2(modulus: int) -> int:
    """The Montgomery correction constant ``R^2 = x^{2m} mod P``."""
    m = bitpoly_degree(modulus)
    return bitpoly_mod(1 << (2 * m), modulus)


def to_mont(value: int, modulus: int) -> int:
    """Map into the Montgomery domain: ``value * x^m mod P``."""
    return mont_mul(value, mont_r2(modulus), modulus)


def from_mont(value: int, modulus: int) -> int:
    """Map out of the Montgomery domain: ``value * x^{-m} mod P``."""
    return mont_mul(value, 1, modulus)
