"""Composite (tower) fields GF((2^k)^2).

Compact cryptographic hardware often avoids a flat GF(2^{2k})
implementation: the Canright/Satoh AES S-box computes the GF(2^8)
inversion in GF((2^4)^2), where subfield operations are cheap table
or gate-level primitives.  A tower element is ``h·Y + l`` with
``h, l ∈ GF(2^k)`` and ``Y`` a root of the irreducible quadratic

    Y^2 + Y + ν = 0,        ν ∈ GF(2^k), Tr(ν) = 1.

Multiplication follows from the quadratic relation:

    (h1·Y + l1)(h2·Y + l2)
        = (h1·h2 + h1·l2 + h2·l1)·Y + (l1·l2 + ν·h1·h2).

The tower is a field of 2^{2k} elements, but its *coordinate encoding*
differs from any polynomial basis of GF(2^{2k}) — which is exactly why
:mod:`repro.gen.tower` matters to the extraction story: a tower
multiplier is functionally a GF(2^{2k}) multiplier, yet Theorem 3's
out-field pattern does not exist in its bit-level expressions.
"""

from __future__ import annotations

from typing import Tuple

from repro.fieldmath.bitpoly import bitpoly_str
from repro.fieldmath.gf2m import GF2m


class TowerField:
    """GF((2^k)^2) with elements packed as ``(h << k) | l``.

    >>> tower = TowerField(GF2m(0b10011))      # GF((2^4)^2)
    >>> tower.order
    256
    >>> tower.mul(tower.inv(0x53), 0x53)
    1
    """

    def __init__(self, base: GF2m, nu: int | None = None):
        self.base = base
        self.k = base.m
        self.nu = self._default_nu() if nu is None else nu
        if self.base.trace(self.nu) != 1:
            raise ValueError(
                f"nu={self.nu:#x} has trace 0 over GF(2^{self.k}); "
                "Y^2 + Y + nu is reducible and defines no field"
            )

    def _default_nu(self) -> int:
        for candidate in self.base.elements():
            if candidate and self.base.trace(candidate) == 1:
                return candidate
        raise AssertionError("every field has trace-1 elements")

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------

    @property
    def m(self) -> int:
        """Extension degree over GF(2): the tower has 2^(2k) elements."""
        return 2 * self.k

    @property
    def order(self) -> int:
        return 1 << (2 * self.k)

    def __repr__(self) -> str:
        return (
            f"TowerField(GF((2^{self.k})^2) over "
            f"{bitpoly_str(self.base.modulus)}, nu={self.nu:#x})"
        )

    # ------------------------------------------------------------------
    # Packing
    # ------------------------------------------------------------------

    def split(self, value: int) -> Tuple[int, int]:
        """Unpack ``value`` into (high, low) subfield coordinates."""
        if not 0 <= value < self.order:
            raise ValueError(f"{value:#x} is not a tower element")
        return value >> self.k, value & ((1 << self.k) - 1)

    def join(self, high: int, low: int) -> int:
        """Pack subfield coordinates into a tower element."""
        return (high << self.k) | low

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------

    def add(self, lhs: int, rhs: int) -> int:
        """Coordinate-wise XOR (characteristic 2)."""
        self.split(lhs), self.split(rhs)
        return lhs ^ rhs

    def mul(self, lhs: int, rhs: int) -> int:
        """Tower multiplication via the quadratic relation."""
        gf = self.base
        h1, l1 = self.split(lhs)
        h2, l2 = self.split(rhs)
        hh = gf.mul(h1, h2)
        high = hh ^ gf.mul(h1, l2) ^ gf.mul(h2, l1)
        low = gf.mul(l1, l2) ^ gf.mul(self.nu, hh)
        return self.join(high, low)

    def square(self, value: int) -> int:
        return self.mul(value, value)

    def inv(self, value: int) -> int:
        """Inversion by the norm trick (the Itoh-Tsujii core).

        For ``v = h·Y + l``: the norm ``Δ = l^2 + l·h + ν·h^2`` lives
        in the subfield, and ``v^{-1} = (h·Y + (l + h)) / Δ``.
        """
        if value == 0:
            raise ZeroDivisionError("0 has no inverse in GF((2^k)^2)")
        gf = self.base
        h, l = self.split(value)
        delta = (
            gf.mul(l, l)
            ^ gf.mul(l, h)
            ^ gf.mul(self.nu, gf.mul(h, h))
        )
        delta_inv = gf.inv(delta)
        return self.join(
            gf.mul(h, delta_inv), gf.mul(l ^ h, delta_inv)
        )

    def pow(self, base_value: int, exponent: int) -> int:
        if exponent < 0:
            base_value = self.inv(base_value)
            exponent = -exponent
        result = 1
        while exponent:
            if exponent & 1:
                result = self.mul(result, base_value)
            base_value = self.mul(base_value, base_value)
            exponent >>= 1
        return result
