"""Operator-overloaded GF(2^m) field elements.

:class:`GF2m` works on bare integers, which keeps the hot paths fast
but reads poorly in application code (the ECC substrate, examples).
:class:`FieldElement` binds a value to its field so arithmetic composes
with Python operators:

>>> from repro.fieldmath.gf2m import GF2m
>>> field = GF2m(0b10011)
>>> a, b = FieldElement(field, 0b0110), FieldElement(field, 0b0111)
>>> (a * b).value
8
>>> (a / a).value
1

Elements of different fields never mix; mixing raises ``ValueError``
rather than silently reducing modulo the wrong polynomial.
"""

from __future__ import annotations

from typing import Union

from repro.fieldmath.bitpoly import bitpoly_str
from repro.fieldmath.gf2m import GF2m

#: Values accepted where an element is expected: a raw int is lifted
#: into the same field.
ElementLike = Union["FieldElement", int]


class FieldElement:
    """An element of a specific GF(2^m) field.

    Instances are immutable and hashable; ``==`` compares both the
    field and the value.
    """

    __slots__ = ("_field", "_value")

    def __init__(self, field: GF2m, value: int):
        if not 0 <= value < field.order:
            raise ValueError(
                f"{value:#x} is not an element of GF(2^{field.m})"
            )
        self._field = field
        self._value = value

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def field(self) -> GF2m:
        """The field this element belongs to."""
        return self._field

    @property
    def value(self) -> int:
        """The element as an integer bit mask (bit i = coeff of x^i)."""
        return self._value

    def is_zero(self) -> bool:
        return self._value == 0

    # ------------------------------------------------------------------
    # Coercion helpers
    # ------------------------------------------------------------------

    def _coerce(self, other: ElementLike) -> "FieldElement":
        if isinstance(other, FieldElement):
            if other._field != self._field:
                raise ValueError(
                    "cannot mix elements of GF(2^"
                    f"{self._field.m}) and GF(2^{other._field.m}) with "
                    f"moduli {bitpoly_str(self._field.modulus)} vs "
                    f"{bitpoly_str(other._field.modulus)}"
                )
            return other
        if isinstance(other, int):
            return FieldElement(self._field, other)
        raise TypeError(f"cannot coerce {other!r} into a field element")

    def _wrap(self, value: int) -> "FieldElement":
        return FieldElement(self._field, value)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------

    def __add__(self, other: ElementLike) -> "FieldElement":
        return self._wrap(
            self._field.add(self._value, self._coerce(other)._value)
        )

    __radd__ = __add__
    #: Characteristic 2: subtraction is addition.
    __sub__ = __add__
    __rsub__ = __add__

    def __mul__(self, other: ElementLike) -> "FieldElement":
        return self._wrap(
            self._field.mul(self._value, self._coerce(other)._value)
        )

    __rmul__ = __mul__

    def __truediv__(self, other: ElementLike) -> "FieldElement":
        return self._wrap(
            self._field.div(self._value, self._coerce(other)._value)
        )

    def __rtruediv__(self, other: ElementLike) -> "FieldElement":
        return self._coerce(other) / self

    def __pow__(self, exponent: int) -> "FieldElement":
        return self._wrap(self._field.pow(self._value, exponent))

    def inverse(self) -> "FieldElement":
        """Multiplicative inverse; raises ``ZeroDivisionError`` on 0."""
        return self._wrap(self._field.inv(self._value))

    def square(self) -> "FieldElement":
        """The Frobenius square ``x^2``."""
        return self._wrap(self._field.square(self._value))

    def sqrt(self) -> "FieldElement":
        """The unique square root."""
        return self._wrap(self._field.sqrt(self._value))

    def trace(self) -> int:
        """The absolute trace, an int in {0, 1}."""
        return self._field.trace(self._value)

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FieldElement):
            return (
                self._field == other._field and self._value == other._value
            )
        if isinstance(other, int):
            return self._value == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._field, self._value))

    def __bool__(self) -> bool:
        return self._value != 0

    def __int__(self) -> int:
        return self._value

    def __repr__(self) -> str:
        return (
            f"FieldElement(GF(2^{self._field.m}), {self._value:#x})"
        )
