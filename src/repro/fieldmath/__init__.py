"""Univariate GF(2)[x] arithmetic and GF(2^m) field substrate.

Polynomials over GF(2) are represented as Python integers whose bit ``i``
is the coefficient of ``x^i`` — e.g. ``0b10011`` is ``x^4 + x + 1``.
Python's arbitrary-precision integers make this representation exact for
the paper's largest field, GF(2^571).

Contents:

``bitpoly``
    carry-less multiply, divmod, gcd, modular exponentiation,
    parsing/printing of ``x^233 + x^74 + 1`` style strings.
``irreducible``
    Rabin irreducibility test; trinomial/pentanomial search.
``gf2m``
    the field GF(2^m) itself (element arithmetic, inversion); the golden
    word-level model our gate-level multipliers are validated against.
``polynomial_db``
    NIST-recommended and architecture-optimal irreducible polynomials
    used in the paper's Tables I-IV.
``montgomery_math``
    word-level Montgomery multiplication reference model.
``reduction``
    Mastrovito reduction rows (``x^{m+t} mod P``) and the XOR-cost model
    of Section II-D / Figure 1.
``element``
    operator-overloaded field elements on top of :class:`GF2m`.
``linalg2``
    GF(2) linear algebra on bitmask matrices (rank / solve / invert),
    used by the normal-basis construction and diagnosis.
``normal``
    normal bases (conjugate orbits) and the Massey-Omura λ-matrix.
``tower``
    composite fields GF((2^k)^2) — the Canright/Satoh AES structure.
"""

from repro.fieldmath.bitpoly import (
    bitpoly_degree,
    bitpoly_divmod,
    bitpoly_from_exponents,
    bitpoly_gcd,
    bitpoly_mod,
    bitpoly_mul,
    bitpoly_mulmod,
    bitpoly_parse,
    bitpoly_powmod,
    bitpoly_str,
    bitpoly_to_exponents,
)
from repro.fieldmath.irreducible import (
    find_irreducible_pentanomials,
    find_irreducible_trinomials,
    is_irreducible,
)
from repro.fieldmath.element import FieldElement
from repro.fieldmath.gf2m import GF2m
from repro.fieldmath.linalg2 import (
    gf2_invert,
    gf2_rank,
    gf2_solve,
    matvec,
    transpose,
)
from repro.fieldmath.polynomial_db import (
    ARCH_OPTIMAL_233,
    NIST_POLYNOMIALS,
    PAPER_POLYNOMIALS,
    arch_optimal_polynomials,
    nist_polynomial,
    scaled_arch_suite,
)
from repro.fieldmath.montgomery_math import mont_mul, mont_r2, to_mont, from_mont
from repro.fieldmath.normal import NormalBasis, find_normal_element
from repro.fieldmath.tower import TowerField
from repro.fieldmath.reduction import (
    reduction_rows,
    reduction_table,
    reduction_xor_cost,
)

__all__ = [
    "bitpoly_degree",
    "bitpoly_divmod",
    "bitpoly_from_exponents",
    "bitpoly_gcd",
    "bitpoly_mod",
    "bitpoly_mul",
    "bitpoly_mulmod",
    "bitpoly_parse",
    "bitpoly_powmod",
    "bitpoly_str",
    "bitpoly_to_exponents",
    "find_irreducible_pentanomials",
    "find_irreducible_trinomials",
    "is_irreducible",
    "FieldElement",
    "GF2m",
    "gf2_invert",
    "gf2_rank",
    "gf2_solve",
    "matvec",
    "transpose",
    "ARCH_OPTIMAL_233",
    "NIST_POLYNOMIALS",
    "PAPER_POLYNOMIALS",
    "arch_optimal_polynomials",
    "nist_polynomial",
    "scaled_arch_suite",
    "mont_mul",
    "mont_r2",
    "to_mont",
    "from_mont",
    "NormalBasis",
    "find_normal_element",
    "TowerField",
    "reduction_rows",
    "reduction_table",
    "reduction_xor_cost",
]
