"""Linear algebra over GF(2) with integer-bitmask rows.

A matrix is a list of ``width``-bit integers, one per row; bit ``j`` of
row ``i`` is entry ``(i, j)``.  This compact form is all the
normal-basis construction and the diagnosis machinery need: rank,
solving ``A x = b``, and inversion, each by Gaussian elimination with
XOR row operations.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple


def gf2_rank(rows: Sequence[int]) -> int:
    """Rank of a GF(2) matrix given as bitmask rows.

    >>> gf2_rank([0b01, 0b10, 0b11])
    2
    """
    rank = 0
    reduced: List[int] = []
    for row in rows:
        for pivot in reduced:
            row = min(row, row ^ pivot)
        if row:
            reduced.append(row)
            reduced.sort(reverse=True)
            rank += 1
    return rank


def gf2_solve(
    rows: Sequence[int], rhs: Sequence[int], width: int
) -> Optional[int]:
    """Solve ``A x = b`` over GF(2); returns x as a bitmask or None.

    ``rows[i]`` is row i of A (bit j = A[i][j]); ``rhs[i]`` is b[i];
    ``width`` is the number of unknowns.  Returns one solution when the
    system is consistent (the free variables, if any, are set to 0).

    >>> bin(gf2_solve([0b11, 0b01], [1, 1], 2))
    '0b1'
    """
    augmented = [
        (row, bit & 1) for row, bit in zip(rows, rhs)
    ]
    pivots: List[Tuple[int, int]] = []  # (column, row index in echelon)
    echelon: List[Tuple[int, int]] = []
    for row, bit in augmented:
        for column, idx in pivots:
            if (row >> column) & 1:
                row ^= echelon[idx][0]
                bit ^= echelon[idx][1]
        if row == 0:
            if bit:
                return None  # 0 = 1: inconsistent
            continue
        column = row.bit_length() - 1
        pivots.append((column, len(echelon)))
        echelon.append((row, bit))

    # Back-substitute to make each pivot column isolated.
    for idx in range(len(echelon) - 1, -1, -1):
        row, bit = echelon[idx]
        column = pivots[idx][0]
        for upper in range(idx):
            urow, ubit = echelon[upper]
            if (urow >> column) & 1:
                echelon[upper] = (urow ^ row, ubit ^ bit)

    solution = 0
    for (column, _), (row, bit) in zip(pivots, echelon):
        if bit:
            solution |= 1 << column
    return solution


def gf2_invert(rows: Sequence[int], width: int) -> Optional[List[int]]:
    """Inverse of a square GF(2) matrix, or None when singular.

    >>> gf2_invert([0b01, 0b11], 2)
    [1, 3]
    """
    if len(rows) != width:
        raise ValueError("matrix must be square")
    # Gauss-Jordan on [A | I]; after full elimination the left half is
    # the identity (pivot of row i at column i) and the right half A^-1.
    augmented = [(row, 1 << idx) for idx, row in enumerate(rows)]
    for column in range(width):
        pivot = next(
            (
                idx
                for idx in range(column, width)
                if (augmented[idx][0] >> column) & 1
            ),
            None,
        )
        if pivot is None:
            return None
        augmented[column], augmented[pivot] = (
            augmented[pivot],
            augmented[column],
        )
        prow, pinv = augmented[column]
        for idx in range(width):
            if idx != column and (augmented[idx][0] >> column) & 1:
                augmented[idx] = (
                    augmented[idx][0] ^ prow,
                    augmented[idx][1] ^ pinv,
                )
    return [inv for _, inv in augmented]


def transpose(rows: Sequence[int], width: int) -> List[int]:
    """Transpose a GF(2) bitmask matrix.

    >>> transpose([0b01, 0b11], 2)
    [3, 2]
    """
    out = [0] * width
    for i, row in enumerate(rows):
        for j in range(width):
            if (row >> j) & 1:
                out[j] |= 1 << i
    return out


def matvec(rows: Sequence[int], vector: int) -> int:
    """Multiply a GF(2) matrix by a column vector (both bitmasks).

    Row ``i`` of the result is ``parity(rows[i] & vector)``.

    >>> matvec([0b11, 0b10], 0b01)
    1
    """
    result = 0
    for i, row in enumerate(rows):
        if bin(row & vector).count("1") & 1:
            result |= 1 << i
    return result
