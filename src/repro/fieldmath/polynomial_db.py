"""Database of the irreducible polynomials used in the paper.

Three groups:

* :data:`NIST_POLYNOMIALS` — the NIST-recommended P(x) for the binary
  curves B-163 .. B-571 [16], used in Tables I and II;
* :data:`PAPER_POLYNOMIALS` — the full per-bit-width list that appears
  in the paper's tables, which additionally includes the m=64 and m=96
  pentanomials the authors used;
* :data:`ARCH_OPTIMAL_233` — Scott's architecture-optimal polynomials
  for GF(2^233) [3], used in Table IV and Figure 4.

For scaled-down runs (pure-Python engine), :func:`scaled_arch_suite`
builds a structurally analogous four-polynomial suite at any bit-width:
one NIST-style low-exponent pentanomial, one trinomial, and two
high-exponent pentanomials mimicking the Pentium/MSP430 entries.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.fieldmath.bitpoly import bitpoly_from_exponents, bitpoly_str
from repro.fieldmath.irreducible import (
    find_high_degree_pentanomial,
    find_irreducible_pentanomials,
    find_irreducible_trinomials,
)

#: NIST-recommended irreducible polynomials for binary fields [16].
NIST_POLYNOMIALS: Dict[int, int] = {
    163: bitpoly_from_exponents([163, 7, 6, 3, 0]),
    233: bitpoly_from_exponents([233, 74, 0]),
    283: bitpoly_from_exponents([283, 12, 7, 5, 0]),
    409: bitpoly_from_exponents([409, 87, 0]),
    571: bitpoly_from_exponents([571, 10, 5, 2, 0]),
}

#: The per-bit-width polynomials exactly as printed in Tables I and II.
#: The paper lists x^163+x^80+x^47+x^9+1 for m=163 (an alternative
#: irreducible pentanomial rather than the NIST curve polynomial); we
#: follow the table verbatim.
PAPER_POLYNOMIALS: Dict[int, int] = {
    64: bitpoly_from_exponents([64, 21, 19, 4, 0]),
    96: bitpoly_from_exponents([96, 44, 7, 2, 0]),
    163: bitpoly_from_exponents([163, 80, 47, 9, 0]),
    233: bitpoly_from_exponents([233, 74, 0]),
    283: bitpoly_from_exponents([283, 12, 7, 5, 0]),
    409: bitpoly_from_exponents([409, 87, 0]),
    571: bitpoly_from_exponents([571, 10, 5, 2, 0]),
}

#: Scott's optimal irreducible polynomials for GF(2^233) per
#: architecture [3], as listed in Table IV.
ARCH_OPTIMAL_233: Dict[str, int] = {
    "Intel-Pentium": bitpoly_from_exponents([233, 201, 105, 9, 0]),
    "ARM": bitpoly_from_exponents([233, 159, 0]),
    "MSP430": bitpoly_from_exponents([233, 185, 121, 105, 0]),
    "NIST-recommended": bitpoly_from_exponents([233, 74, 0]),
}


def nist_polynomial(m: int) -> int:
    """The NIST-recommended P(x) for bit-width ``m``.

    >>> bitpoly_str(nist_polynomial(233))
    'x^233 + x^74 + 1'
    """
    try:
        return NIST_POLYNOMIALS[m]
    except KeyError:
        raise KeyError(
            f"no NIST-recommended polynomial for m={m}; "
            f"available: {sorted(NIST_POLYNOMIALS)}"
        ) from None


def paper_polynomial(m: int) -> int:
    """The P(x) used in the paper's tables for bit-width ``m``."""
    try:
        return PAPER_POLYNOMIALS[m]
    except KeyError:
        raise KeyError(
            f"paper tables have no entry for m={m}; "
            f"available: {sorted(PAPER_POLYNOMIALS)}"
        ) from None


def arch_optimal_polynomials() -> List[Tuple[str, int]]:
    """Table IV rows as ``(architecture, P(x))`` pairs, paper order."""
    return list(ARCH_OPTIMAL_233.items())


def scaled_arch_suite(m: int) -> List[Tuple[str, int]]:
    """A four-polynomial suite at bit-width ``m`` analogous to Table IV.

    Table IV compares four irreducible polynomials of the *same* degree
    that differ in structure (one trinomial, three pentanomials with
    very different middle exponents).  For scaled-down runs this builds
    the same comparison at any ``m``:

    * ``trinomial`` — lowest-middle-exponent irreducible trinomial
      (the ARM/NIST-like cheap rows);
    * ``pentanomial-low`` — lexicographically-first pentanomial (the
      NIST-style choice when no trinomial exists);
    * ``pentanomial-high`` — pentanomial with second exponent close to
      ``m`` (Pentium-like: long reduction rows, expensive);
    * ``trinomial-high`` or second high pentanomial — whichever exists,
      to mirror the MSP430 row.

    All returned polynomials are distinct and verified irreducible.
    Degrees with no irreducible trinomial (e.g. every multiple of 8)
    fall back to pentanomials only.
    """
    suite: List[Tuple[str, int]] = []
    seen = set()

    def push(label: str, poly: int | None) -> None:
        if poly is not None and poly not in seen:
            seen.add(poly)
            suite.append((label, poly))

    trinomials = find_irreducible_trinomials(m)
    if trinomials:
        push("trinomial", trinomials[0])
        push("trinomial-high", trinomials[-1])
    pentanomials = find_irreducible_pentanomials(m, limit=2)
    for idx, poly in enumerate(pentanomials):
        push(f"pentanomial-low{'' if idx == 0 else '-alt'}", poly)
    push(
        "pentanomial-high",
        find_high_degree_pentanomial(m, min_high=max(2, (3 * m) // 4)),
    )
    if len(suite) > 4:
        # Keep structural variety: first trinomial, low penta, then the
        # high-exponent entries.
        labels = {label for label, _ in suite}
        preferred = [
            "trinomial",
            "pentanomial-low",
            "pentanomial-high",
            "trinomial-high",
            "pentanomial-low-alt",
        ]
        ordered = [entry for name in preferred for entry in suite if entry[0] == name]
        suite = ordered[:4] if len(labels) >= 4 else suite[:4]
    return suite
