"""Univariate polynomials over GF(2) as integer bit masks.

Bit ``i`` of the integer is the coefficient of ``x^i``:

>>> bitpoly_str(0b10011)
'x^4 + x + 1'

All functions are pure and operate on plain ``int`` values, which keeps
them trivially usable inside multiprocessing workers and benchmark
loops.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple


def bitpoly_degree(poly: int) -> int:
    """Degree of the polynomial; the zero polynomial has degree -1."""
    return poly.bit_length() - 1


def bitpoly_from_exponents(exponents: Iterable[int]) -> int:
    """Build a polynomial from its exponent list.

    >>> bitpoly_from_exponents([4, 1, 0]) == 0b10011
    True
    """
    poly = 0
    for exp in exponents:
        if exp < 0:
            raise ValueError(f"negative exponent {exp}")
        poly ^= 1 << exp
    return poly


def bitpoly_to_exponents(poly: int) -> List[int]:
    """Exponents with coefficient 1, descending.

    >>> bitpoly_to_exponents(0b10011)
    [4, 1, 0]
    """
    out = []
    idx = poly.bit_length() - 1
    while idx >= 0:
        if (poly >> idx) & 1:
            out.append(idx)
        idx -= 1
    return out


def bitpoly_mul(lhs: int, rhs: int) -> int:
    """Carry-less product of two GF(2)[x] polynomials.

    Iterates over the set bits of the smaller operand.
    """
    if lhs.bit_count() > rhs.bit_count():
        lhs, rhs = rhs, lhs
    acc = 0
    while lhs:
        low = lhs & -lhs
        acc ^= rhs * low  # multiplying by a power of two is a shift
        lhs ^= low
    return acc


def bitpoly_divmod(dividend: int, divisor: int) -> Tuple[int, int]:
    """Quotient and remainder of polynomial division over GF(2).

    >>> q, r = bitpoly_divmod(0b10011, 0b111)
    >>> bitpoly_mod(bitpoly_mul(q, 0b111) ^ r, 1 << 60) == 0b10011
    True
    """
    if divisor == 0:
        raise ZeroDivisionError("polynomial division by zero")
    deg_divisor = bitpoly_degree(divisor)
    quotient = 0
    remainder = dividend
    deg_rem = bitpoly_degree(remainder)
    while deg_rem >= deg_divisor:
        shift = deg_rem - deg_divisor
        quotient ^= 1 << shift
        remainder ^= divisor << shift
        deg_rem = bitpoly_degree(remainder)
    return quotient, remainder


def bitpoly_mod(poly: int, modulus: int) -> int:
    """Remainder of ``poly`` modulo ``modulus`` over GF(2)."""
    if modulus == 0:
        raise ZeroDivisionError("polynomial reduction by zero")
    deg_mod = bitpoly_degree(modulus)
    deg = bitpoly_degree(poly)
    while deg >= deg_mod:
        poly ^= modulus << (deg - deg_mod)
        deg = bitpoly_degree(poly)
    return poly


def bitpoly_mulmod(lhs: int, rhs: int, modulus: int) -> int:
    """``lhs * rhs mod modulus`` over GF(2)[x]."""
    return bitpoly_mod(bitpoly_mul(lhs, rhs), modulus)


def bitpoly_powmod(base: int, exponent: int, modulus: int) -> int:
    """``base^exponent mod modulus`` by square-and-multiply.

    >>> bitpoly_powmod(0b10, 4, 0b10011)  # x^4 mod x^4+x+1 = x+1
    3
    """
    if exponent < 0:
        raise ValueError("negative exponent")
    result = 1
    base = bitpoly_mod(base, modulus)
    while exponent:
        if exponent & 1:
            result = bitpoly_mulmod(result, base, modulus)
        base = bitpoly_mulmod(base, base, modulus)
        exponent >>= 1
    return result


def bitpoly_gcd(lhs: int, rhs: int) -> int:
    """Greatest common divisor over GF(2)[x] (Euclid)."""
    while rhs:
        lhs, rhs = rhs, bitpoly_mod(lhs, rhs)
    return lhs


def bitpoly_str(poly: int) -> str:
    """Human-readable form, matching the paper's notation.

    >>> bitpoly_str(bitpoly_from_exponents([233, 74, 0]))
    'x^233 + x^74 + 1'
    >>> bitpoly_str(0)
    '0'
    """
    if poly == 0:
        return "0"
    parts = []
    for exp in bitpoly_to_exponents(poly):
        if exp == 0:
            parts.append("1")
        elif exp == 1:
            parts.append("x")
        else:
            parts.append(f"x^{exp}")
    return " + ".join(parts)


def bitpoly_parse(text: str) -> int:
    """Parse ``x^233 + x^74 + 1`` (also accepts ``X``, ``**`` and no-ops).

    >>> bitpoly_parse("x^4 + x + 1") == 0b10011
    True
    >>> bitpoly_parse("X**8+X**4+X**3+X+1") == 0x11b
    True
    """
    poly = 0
    cleaned = text.replace("**", "^").replace(" ", "").lower()
    if not cleaned:
        raise ValueError("empty polynomial string")
    for term in cleaned.split("+"):
        if not term:
            raise ValueError(f"empty term in {text!r}")
        if term == "1":
            poly ^= 1
        elif term == "0":
            continue
        elif term == "x":
            poly ^= 2
        elif term.startswith("x^"):
            poly ^= 1 << int(term[2:])
        else:
            raise ValueError(f"cannot parse term {term!r} in {text!r}")
    return poly
