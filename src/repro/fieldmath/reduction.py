"""Mastrovito reduction matrices and the XOR-cost model of Section II-D.

A GF(2^m) multiplication first forms the polynomial product
``S(x) = A(x)·B(x)`` with coefficients ``s_0 .. s_{2m-2}`` and then
reduces the *out-field* coefficients ``s_m .. s_{2m-2}`` modulo P(x).
Because ``x^{m+t} mod P(x)`` is a fixed polynomial of degree < m, the
reduction is linear: output bit ``z_i`` is the XOR of ``s_i`` and every
``s_{m+t}`` whose reduction row has bit ``i`` set.

Figure 1 of the paper draws exactly these rows for GF(2^4) and counts
the XOR gates they cost: 9 for ``P1 = x^4+x^3+1`` and 6 for
``P2 = x^4+x+1``.  The functions here regenerate that figure for any
P(x) and feed both the Mastrovito netlist generator and the
Figure-1 benchmark.
"""

from __future__ import annotations

from typing import Dict, List

from repro.fieldmath.bitpoly import (
    bitpoly_degree,
    bitpoly_mod,
    bitpoly_str,
)


def reduction_rows(modulus: int) -> List[int]:
    """Rows ``r_t = x^{m+t} mod P(x)`` for ``t = 0 .. m-2``.

    Row ``t`` is the bit mask of output columns that receive the
    out-field coefficient ``s_{m+t}``.

    >>> [bin(r) for r in reduction_rows(0b10011)]   # x^4+x+1
    ['0b11', '0b110', '0b1100']
    """
    m = bitpoly_degree(modulus)
    if m < 1:
        raise ValueError("modulus must have degree >= 1")
    rows = []
    current = bitpoly_mod(1 << m, modulus)
    for _ in range(m - 1):
        rows.append(current)
        current = bitpoly_mod(current << 1, modulus)
    return rows


def column_contributions(modulus: int) -> List[List[int]]:
    """For each output bit ``z_i``, the list of ``s_k`` indices XORed in.

    Index ``i`` always contributes ``s_i`` itself; out-field indices
    ``m+t`` contribute when reduction row ``t`` has bit ``i`` set.

    >>> column_contributions(0b10011)[0]     # z0 of GF(2^4), x^4+x+1
    [0, 4]
    """
    m = bitpoly_degree(modulus)
    rows = reduction_rows(modulus)
    columns: List[List[int]] = [[i] for i in range(m)]
    for t, row in enumerate(rows):
        for i in range(m):
            if (row >> i) & 1:
                columns[i].append(m + t)
    return columns


def reduction_xor_cost(modulus: int) -> int:
    """Number of 2-input XORs the reduction step costs (Section II-D).

    Counted exactly as in the paper: terms per column minus one, summed
    over columns.

    >>> reduction_xor_cost(0b11001)   # P1 = x^4 + x^3 + 1
    9
    >>> reduction_xor_cost(0b10011)   # P2 = x^4 + x + 1
    6
    """
    return sum(len(col) - 1 for col in column_contributions(modulus))


def reduction_table(modulus: int) -> str:
    """Render the Figure-1 style reduction table as ASCII.

    Columns are ``z_{m-1} .. z_0`` (paper order, MSB left); the first
    row holds the in-field coefficients ``s_{m-1} .. s_0`` and each
    subsequent row shows where one out-field coefficient lands.
    """
    m = bitpoly_degree(modulus)
    rows = reduction_rows(modulus)
    width = max(4, len(f"s{2 * m - 2}") + 1)

    def cell(text: str) -> str:
        return text.rjust(width)

    lines = [f"P(x) = {bitpoly_str(modulus)}"]
    lines.append("".join(cell(f"s{i}") for i in range(m - 1, -1, -1)))
    for t, row in enumerate(rows):
        rendered = []
        for i in range(m - 1, -1, -1):
            rendered.append(cell(f"s{m + t}" if (row >> i) & 1 else "0"))
        lines.append("".join(rendered))
    lines.append("".join(cell(f"z{i}") for i in range(m - 1, -1, -1)))
    return "\n".join(lines)


def xor_cost_report(moduli: Dict[str, int]) -> str:
    """Compare the reduction XOR cost of several polynomials.

    Returns an ASCII table with one row per named polynomial, sorted in
    input order — used by the Figure-1 benchmark and the crypto-audit
    example.
    """
    header = f"{'name':<20} {'P(x)':<42} {'reduction XORs':>14}"
    lines = [header, "-" * len(header)]
    for name, modulus in moduli.items():
        lines.append(
            f"{name:<20} {bitpoly_str(modulus):<42} "
            f"{reduction_xor_cost(modulus):>14}"
        )
    return "\n".join(lines)
