"""Irreducibility testing and search over GF(2)[x].

The reproduction needs two things the paper takes from the literature:

* a way to *verify* that the NIST / architecture-optimal polynomials in
  the database really are irreducible (sanity for every experiment), and
* a way to *search* for irreducible trinomials and pentanomials of a
  given degree, so the scaled-down Table IV suite can be built for any
  bit-width (Section II-D: P(x) is either a trinomial ``x^m + x^a + 1``
  or a pentanomial ``x^m + x^a + x^b + x^c + 1``).

The test is Rabin's: ``f`` of degree ``n`` is irreducible over GF(2) iff

* ``x^(2^n) ≡ x (mod f)``, and
* ``gcd(x^(2^(n/p)) - x, f) = 1`` for every prime divisor ``p`` of ``n``.

Squaring mod ``f`` is cheap in the bit-mask representation, so the test
handles degree 571 comfortably.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.fieldmath.bitpoly import (
    bitpoly_degree,
    bitpoly_from_exponents,
    bitpoly_gcd,
    bitpoly_mod,
    bitpoly_mulmod,
)

_X = 0b10  # the polynomial x


def _prime_factors(value: int) -> List[int]:
    """Distinct prime factors of a positive integer."""
    factors = []
    candidate = 2
    while candidate * candidate <= value:
        if value % candidate == 0:
            factors.append(candidate)
            while value % candidate == 0:
                value //= candidate
        candidate += 1 if candidate == 2 else 2
    if value > 1:
        factors.append(value)
    return factors


def _frobenius_power(steps: int, modulus: int) -> int:
    """Compute ``x^(2^steps) mod modulus`` by repeated squaring of x."""
    acc = bitpoly_mod(_X, modulus)
    for _ in range(steps):
        acc = bitpoly_mulmod(acc, acc, modulus)
    return acc


def is_irreducible(poly: int) -> bool:
    """Rabin irreducibility test over GF(2).

    >>> is_irreducible(0b10011)            # x^4 + x + 1
    True
    >>> is_irreducible(0b11111)            # x^4+x^3+x^2+x+1 (irreducible)
    True
    >>> is_irreducible(0b10101)            # x^4+x^2+1 = (x^2+x+1)^2
    False
    """
    degree = bitpoly_degree(poly)
    if degree <= 0:
        return False
    if degree == 1:
        return True
    if not poly & 1:
        return False  # divisible by x
    # x^(2^n) must reduce to x.
    if _frobenius_power(degree, poly) != _X:
        return False
    for prime in _prime_factors(degree):
        probe = _frobenius_power(degree // prime, poly) ^ _X
        if bitpoly_gcd(probe, poly) != 1:
            return False
    return True


def iter_irreducible_trinomials(degree: int) -> Iterator[int]:
    """Yield irreducible ``x^m + x^a + 1`` for ``0 < a < m``, ascending a."""
    if degree < 2:
        return
    for middle in range(1, degree):
        candidate = bitpoly_from_exponents([degree, middle, 0])
        if is_irreducible(candidate):
            yield candidate


def find_irreducible_trinomials(degree: int, limit: int | None = None) -> List[int]:
    """Irreducible trinomials of the given degree (possibly empty).

    >>> [hex(p) for p in find_irreducible_trinomials(4)]
    ['0x13', '0x19']
    >>> find_irreducible_trinomials(8)   # famously none of degree 8
    []
    """
    out = []
    for poly in iter_irreducible_trinomials(degree):
        out.append(poly)
        if limit is not None and len(out) >= limit:
            break
    return out


def iter_irreducible_pentanomials(degree: int) -> Iterator[int]:
    """Yield irreducible ``x^m + x^a + x^b + x^c + 1`` (a > b > c > 0)."""
    if degree < 4:
        return
    for high in range(3, degree):
        for mid in range(2, high):
            for low in range(1, mid):
                candidate = bitpoly_from_exponents([degree, high, mid, low, 0])
                if is_irreducible(candidate):
                    yield candidate


def find_irreducible_pentanomials(degree: int, limit: int = 4) -> List[int]:
    """First ``limit`` irreducible pentanomials of the given degree.

    NIST follows the convention of choosing the pentanomial only when no
    irreducible trinomial of that degree exists [16]; the search order
    here (lexicographic in (a, b, c)) mirrors the standard tables.

    >>> from repro.fieldmath.bitpoly import bitpoly_str
    >>> bitpoly_str(find_irreducible_pentanomials(8, limit=1)[0])
    'x^8 + x^4 + x^3 + x + 1'
    """
    out = []
    for poly in iter_irreducible_pentanomials(degree):
        out.append(poly)
        if len(out) >= limit:
            break
    return out


def find_high_degree_pentanomial(degree: int, min_high: int) -> int | None:
    """Find an irreducible pentanomial whose second exponent is >= min_high.

    Used to build scaled-down analogues of the architecture-optimal
    polynomials of Table IV, which have large middle exponents
    (e.g. Intel-Pentium's ``x^233 + x^201 + x^105 + x^9 + 1``).
    """
    for high in range(degree - 1, min_high - 1, -1):
        for mid in range(high - 1, 1, -1):
            for low in range(1, mid):
                candidate = bitpoly_from_exponents([degree, high, mid, low, 0])
                if is_irreducible(candidate):
                    return candidate
    return None


def default_irreducible(degree: int) -> int:
    """A canonical irreducible polynomial of the given degree.

    Prefers the lexicographically-first trinomial, falling back to the
    first pentanomial, then to an exhaustive search over all
    polynomials (degrees where neither form exists do not occur below
    10000, but the fallback keeps the function total).
    """
    trinomials = find_irreducible_trinomials(degree, limit=1)
    if trinomials:
        return trinomials[0]
    pentanomials = find_irreducible_pentanomials(degree, limit=1)
    if pentanomials:
        return pentanomials[0]
    for tail in range(1, 1 << degree):
        candidate = (1 << degree) | tail
        if is_irreducible(candidate):
            return candidate
    raise ValueError(f"no irreducible polynomial of degree {degree}")
