"""The binary extension field GF(2^m) in polynomial basis.

This is the golden word-level model of the reproduction: every
gate-level multiplier emitted by :mod:`repro.gen` is validated against
:meth:`GF2m.mul`, and the extraction verifier rebuilds specification
polynomials from it.

Elements are integers in ``[0, 2^m)`` whose bit ``i`` is the coefficient
of ``x^i`` — the same representation as :mod:`repro.fieldmath.bitpoly`,
reduced modulo the field's irreducible polynomial.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.fieldmath.bitpoly import (
    bitpoly_degree,
    bitpoly_divmod,
    bitpoly_mod,
    bitpoly_mul,
    bitpoly_str,
)
from repro.fieldmath.irreducible import is_irreducible


class GF2m:
    """The field GF(2^m) constructed from an irreducible polynomial.

    >>> field = GF2m(0b10011)           # GF(2^4), P = x^4 + x + 1
    >>> field.m
    4
    >>> field.mul(0b0110, 0b0111)       # (x^2+x)(x^2+x+1)
    8
    >>> field.mul(field.inv(13), 13)
    1
    """

    def __init__(self, modulus: int, check_irreducible: bool = True):
        degree = bitpoly_degree(modulus)
        if degree < 1:
            raise ValueError("field modulus must have degree >= 1")
        if check_irreducible and not is_irreducible(modulus):
            raise ValueError(
                f"{bitpoly_str(modulus)} is reducible; "
                "it does not define a field"
            )
        self._modulus = modulus
        self._m = degree

    # ------------------------------------------------------------------
    # Field metadata
    # ------------------------------------------------------------------

    @property
    def modulus(self) -> int:
        """The irreducible polynomial P(x) as a bit mask."""
        return self._modulus

    @property
    def m(self) -> int:
        """The extension degree (field has 2^m elements)."""
        return self._m

    @property
    def order(self) -> int:
        """Number of field elements, 2^m."""
        return 1 << self._m

    def __repr__(self) -> str:
        return f"GF2m({bitpoly_str(self._modulus)!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, GF2m):
            return self._modulus == other._modulus
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("GF2m", self._modulus))

    # ------------------------------------------------------------------
    # Element arithmetic
    # ------------------------------------------------------------------

    def _check(self, value: int) -> int:
        if not 0 <= value < self.order:
            raise ValueError(
                f"{value:#x} is not an element of GF(2^{self._m})"
            )
        return value

    def add(self, lhs: int, rhs: int) -> int:
        """Addition = coefficient-wise XOR (characteristic 2)."""
        return self._check(lhs) ^ self._check(rhs)

    #: Subtraction coincides with addition in characteristic 2.
    sub = add

    def mul(self, lhs: int, rhs: int) -> int:
        """Multiplication modulo the irreducible polynomial."""
        product = bitpoly_mul(self._check(lhs), self._check(rhs))
        return bitpoly_mod(product, self._modulus)

    def square(self, value: int) -> int:
        """Squaring (the Frobenius map, linear over GF(2))."""
        return self.mul(value, value)

    def pow(self, base: int, exponent: int) -> int:
        """Exponentiation by square-and-multiply.

        Negative exponents are supported via inversion.
        """
        if exponent < 0:
            base = self.inv(base)
            exponent = -exponent
        result = 1
        base = self._check(base)
        while exponent:
            if exponent & 1:
                result = self.mul(result, base)
            base = self.mul(base, base)
            exponent >>= 1
        return result

    def inv(self, value: int) -> int:
        """Multiplicative inverse by the extended Euclidean algorithm."""
        self._check(value)
        if value == 0:
            raise ZeroDivisionError("0 has no inverse in GF(2^m)")
        # Invariant: old_s * value + (...) * modulus = old_r over GF(2)[x]
        old_r, r = value, self._modulus
        old_s, s = 1, 0
        while r != 0:
            quotient, remainder = bitpoly_divmod(old_r, r)
            old_r, r = r, remainder
            old_s, s = s, old_s ^ bitpoly_mul(quotient, s)
        assert old_r == 1, "gcd must be 1 for an irreducible modulus"
        return bitpoly_mod(old_s, self._modulus)

    def div(self, lhs: int, rhs: int) -> int:
        """``lhs / rhs`` in the field."""
        return self.mul(lhs, self.inv(rhs))

    def sqrt(self, value: int) -> int:
        """The unique square root (Frobenius is a bijection).

        ``sqrt(x) = x^(2^(m-1))`` because squaring m times is the
        identity map on GF(2^m).

        >>> field = GF2m(0b10011)
        >>> field.square(field.sqrt(9))
        9
        """
        result = self._check(value)
        for _ in range(self._m - 1):
            result = self.mul(result, result)
        return result

    def trace(self, value: int) -> int:
        """The absolute trace ``Tr(x) = x + x^2 + x^4 + ... + x^(2^(m-1))``.

        The trace is GF(2)-linear and always lands in {0, 1}; exactly
        half the field elements have trace 1.

        >>> field = GF2m(0b1011)
        >>> sorted({field.trace(v) for v in field.elements()})
        [0, 1]
        """
        acc = 0
        term = self._check(value)
        for _ in range(self._m):
            acc ^= term
            term = self.mul(term, term)
        return acc

    # ------------------------------------------------------------------
    # Utilities
    # ------------------------------------------------------------------

    def element_bits(self, value: int) -> List[int]:
        """Coefficient list ``[z0, z1, ..., z_{m-1}]`` of an element."""
        self._check(value)
        return [(value >> idx) & 1 for idx in range(self._m)]

    def from_bits(self, bits: List[int]) -> int:
        """Inverse of :meth:`element_bits`."""
        if len(bits) > self._m:
            raise ValueError("too many coefficient bits")
        value = 0
        for idx, bit in enumerate(bits):
            if bit & 1:
                value |= 1 << idx
        return value

    def elements(self) -> Iterator[int]:
        """Iterate over all field elements (use only for small m)."""
        if self._m > 20:
            raise ValueError("refusing to enumerate a field with 2^m > 2^20")
        return iter(range(self.order))

    def is_generator(self, value: int) -> bool:
        """True when ``value`` generates the multiplicative group."""
        self._check(value)
        if value == 0:
            return False
        group_order = self.order - 1
        for prime in _distinct_prime_factors(group_order):
            if self.pow(value, group_order // prime) == 1:
                return False
        return True

    def find_generator(self) -> int:
        """Smallest generator of the multiplicative group (small m only)."""
        for candidate in range(2, self.order):
            if self.is_generator(candidate):
                return candidate
        # GF(2) has trivial group; 1 generates it.
        return 1


def _distinct_prime_factors(value: int) -> List[int]:
    factors = []
    candidate = 2
    while candidate * candidate <= value:
        if value % candidate == 0:
            factors.append(candidate)
            while value % candidate == 0:
                value //= candidate
        candidate += 1 if candidate == 2 else 2
    if value > 1:
        factors.append(value)
    return factors
