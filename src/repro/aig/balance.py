"""XOR- and AND-tree rebalancing as AIG→AIG passes.

GF(2^m) multipliers are dominated by XOR trees, and naive elaboration
produces linear-depth chains.  The netlist-level pass
(:mod:`repro.synth.xor_opt`) collects each maximal single-fanout XOR
tree into its leaf multiset, cancels duplicate leaves mod 2, and
re-emits a balanced tree; this module is the same transformation on
the AIG, where it is both simpler and stronger:

* fanin complements are already pulled to the edges, so XNOR chains
  participate in the same trees;
* duplicate-leaf cancellation composes with the hash-consed
  constructor's own cancellation (``x ⊕ x = 0`` by construction);
* the rebuilt graph is re-hash-consed, so balancing can only ever
  share more structure, never duplicate it.

:func:`balance_and_trees` is the AND-side counterpart: maximal
single-fanout AND chains (an AND fanin edge must be *uncomplemented*
to dissolve — a complemented edge feeds the child's negation, which is
not part of the product) are collected into their leaf-literal set,
idempotence (``x·x = x``) applied, and re-emitted as a balanced tree.
Multiplier partial-product rows and the AND cones technology mapping
leaves behind get logarithmic depth the same way the XOR trees do.

Both passes are one parametrized rebuild (:func:`_rebuild_balanced`):
the liveness/refs accounting, the tree-dissolve rule and the
leaf-to-literal mapping are shared, and only two decisions differ —
which node kind forms trees, and whether duplicate leaves cancel
mod 2 (XOR) or dedupe (AND).
"""

from __future__ import annotations

from typing import Dict, List

from repro.aig.aig import Aig, lit_complement, lit_node


def balance_xor_trees(aig: Aig) -> Aig:
    """Return a rebuilt AIG with balanced, leaf-cancelled XOR trees.

    >>> aig = Aig()
    >>> a, b = aig.add_input("a"), aig.add_input("b")
    >>> chain = aig.aig_xor(aig.aig_xor(a, b), a)     # a ⊕ b ⊕ a
    >>> aig.add_output("y", chain)
    >>> balanced = balance_xor_trees(aig)
    >>> balanced.simulate({"a": 1, "b": 1})["y"]
    1
    """
    return _rebuild_balanced(aig, tree_kind="xor")


def balance_and_trees(aig: Aig) -> Aig:
    """Return a rebuilt AIG with balanced, deduplicated AND trees.

    >>> aig = Aig()
    >>> a, b, c = (aig.add_input(n) for n in "abc")
    >>> chain = aig.aig_and(aig.aig_and(aig.aig_and(a, b), c), a)
    >>> aig.add_output("y", chain)
    >>> balanced = balance_and_trees(aig)
    >>> balanced.simulate({"a": 1, "b": 1, "c": 1})["y"]
    1
    """
    return _rebuild_balanced(aig, tree_kind="and")


def _rebuild_balanced(aig: Aig, tree_kind: str) -> Aig:
    """Collect maximal single-fanout trees of one kind and re-emit
    them balanced; every other node is rebuilt 1:1 (re-hash-consed).
    """
    xor_trees = tree_kind == "xor"
    is_tree_node = aig.is_xor if xor_trees else aig.is_and
    live = aig.live_nodes()
    live_set = set(live)

    # Reference counts over the live graph (outputs count as refs): a
    # tree-kind node is *internal* — dissolvable into its consumer's
    # tree — when its only consumer is another live node of the same
    # kind reached through an uncomplemented edge (XOR fanins are
    # stored uncomplemented by construction; for AND a complemented
    # edge feeds the child's negation, a different factor) and it is
    # not a PO root.
    refs: Dict[int, int] = {}
    tree_consumers: Dict[int, int] = {}
    for node in live:
        if not (aig.is_and(node) or aig.is_xor(node)):
            continue
        for lit in aig.fanins(node):
            child = lit_node(lit)
            refs[child] = refs.get(child, 0) + 1
            if is_tree_node(node) and not (lit & 1):
                tree_consumers[child] = tree_consumers.get(child, 0) + 1
    for _, lit in aig.outputs:
        node = lit_node(lit)
        refs[node] = refs.get(node, 0) + 1

    def is_internal(node: int) -> bool:
        return (
            is_tree_node(node)
            and node in live_set
            and refs.get(node, 0) == 1
            and tree_consumers.get(node, 0) == 1
        )

    result = Aig(aig.name)
    # Declared inputs first (and in order) so they survive the round
    # trip even when unused; undeclared leaves stay undeclared.
    for name in aig.inputs:
        result.add_input(name)
    new_lit: Dict[int, int] = {0: 0}
    for node in live:
        if aig.is_leaf(node):
            new_lit[node] = result.add_input(
                aig.pi_name[node], declare=False
            )

    def leaf_literals(root: int) -> List[int]:
        # Leaf *literals* of the maximal tree at ``root`` (for AND the
        # complement matters: ``a · ¬b`` keeps both factors distinct;
        # XOR edges carry none).  Duplicates cancel mod 2 for XOR and
        # dedupe for AND.  Explicit stack: the motivating input is a
        # linear-depth chain, which would blow the recursion limit.
        counts: Dict[int, int] = {}
        stack = [root]
        while stack:
            node = stack.pop()
            for lit in aig.fanins(node):
                if not (lit & 1) and is_internal(lit_node(lit)):
                    stack.append(lit_node(lit))
                else:
                    counts[lit] = counts.get(lit, 0) + 1
        if xor_trees:
            return sorted(lit for lit, count in counts.items() if count & 1)
        return sorted(counts)

    for node in live:
        if not (aig.is_and(node) or aig.is_xor(node)):
            continue
        if is_tree_node(node):
            if is_internal(node):
                continue  # absorbed by the root that reaches it
            lits = [
                new_lit[lit_node(lit)] ^ (lit & 1)
                for lit in leaf_literals(node)
            ]
            combine = result.aig_xor_all if xor_trees else result.aig_and_all
            new_lit[node] = combine(lits)
        else:
            f0, f1 = aig.fanins(node)
            rebuild = result.aig_xor if aig.is_xor(node) else result.aig_and
            new_lit[node] = rebuild(
                new_lit[lit_node(f0)] ^ (f0 & 1),
                new_lit[lit_node(f1)] ^ (f1 & 1),
            )

    for name, lit in aig.outputs:
        mapped = new_lit[lit_node(lit)]
        result.add_output(name, lit_complement(mapped) if lit & 1 else mapped)
    return result
