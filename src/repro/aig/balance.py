"""XOR-tree rebalancing as an AIG→AIG pass.

GF(2^m) multipliers are dominated by XOR trees, and naive elaboration
produces linear-depth chains.  The netlist-level pass
(:mod:`repro.synth.xor_opt`) collects each maximal single-fanout XOR
tree into its leaf multiset, cancels duplicate leaves mod 2, and
re-emits a balanced tree; this module is the same transformation on
the AIG, where it is both simpler and stronger:

* fanin complements are already pulled to the edges, so XNOR chains
  participate in the same trees;
* duplicate-leaf cancellation composes with the hash-consed
  constructor's own cancellation (``x ⊕ x = 0`` by construction);
* the rebuilt graph is re-hash-consed, so balancing can only ever
  share more structure, never duplicate it.
"""

from __future__ import annotations

from typing import Dict, List

from repro.aig.aig import Aig, lit_complement, lit_node


def balance_xor_trees(aig: Aig) -> Aig:
    """Return a rebuilt AIG with balanced, leaf-cancelled XOR trees.

    >>> aig = Aig()
    >>> a, b = aig.add_input("a"), aig.add_input("b")
    >>> chain = aig.aig_xor(aig.aig_xor(a, b), a)     # a ⊕ b ⊕ a
    >>> aig.add_output("y", chain)
    >>> balanced = balance_xor_trees(aig)
    >>> balanced.simulate({"a": 1, "b": 1})["y"]
    1
    """
    live = aig.live_nodes()
    live_set = set(live)

    # Reference counts over the live graph (outputs count as refs):
    # an XOR node is *internal* — dissolvable into its consumer's tree —
    # when its only consumer is another live XOR and it is not a PO root.
    refs: Dict[int, int] = {}
    xor_consumers: Dict[int, int] = {}
    for node in live:
        if not (aig.is_and(node) or aig.is_xor(node)):
            continue
        for lit in aig.fanins(node):
            child = lit_node(lit)
            refs[child] = refs.get(child, 0) + 1
            if aig.is_xor(node):
                xor_consumers[child] = xor_consumers.get(child, 0) + 1
    for _, lit in aig.outputs:
        node = lit_node(lit)
        refs[node] = refs.get(node, 0) + 1

    def is_internal(node: int) -> bool:
        return (
            aig.is_xor(node)
            and node in live_set
            and refs.get(node, 0) == 1
            and xor_consumers.get(node, 0) == 1
        )

    result = Aig(aig.name)
    # Declared inputs first (and in order) so they survive the round
    # trip even when unused; undeclared leaves stay undeclared.
    for name in aig.inputs:
        result.add_input(name)
    new_lit: Dict[int, int] = {0: 0}
    for node in live:
        if aig.is_leaf(node):
            new_lit[node] = result.add_input(
                aig.pi_name[node], declare=False
            )

    def leaves_of(root: int, parity: Dict[int, int]) -> None:
        # Explicit stack: the motivating input is a linear-depth XOR
        # chain, which would blow the recursion limit long before it
        # troubles an iterative walk.
        stack = [root]
        while stack:
            node = stack.pop()
            for lit in aig.fanins(node):
                child = lit_node(lit)  # XOR fanins are never complemented
                if is_internal(child):
                    stack.append(child)
                else:
                    parity[child] = parity.get(child, 0) ^ 1

    for node in live:
        if aig.is_and(node):
            f0, f1 = aig.fanins(node)
            new_lit[node] = result.aig_and(
                new_lit[lit_node(f0)] ^ (f0 & 1),
                new_lit[lit_node(f1)] ^ (f1 & 1),
            )
        elif aig.is_xor(node):
            if is_internal(node):
                continue  # absorbed by the root that reaches it
            parity: Dict[int, int] = {}
            leaves_of(node, parity)
            lits = [
                new_lit[leaf]
                for leaf in sorted(parity)
                if parity[leaf]
            ]
            new_lit[node] = result.aig_xor_all(lits)

    for name, lit in aig.outputs:
        mapped = new_lit[lit_node(lit)]
        result.add_output(name, lit_complement(mapped) if lit & 1 else mapped)
    return result
