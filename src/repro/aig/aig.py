"""The :class:`Aig` container — hash-consed AND/XOR nodes, literal edges.

See the package docstring (:mod:`repro.aig`) for the design note.  The
operations the rest of the system relies on:

* **construction** — :meth:`Aig.aig_and` / :meth:`Aig.aig_xor` with
  structural hashing, so CSE / inverter-pair removal / constant
  folding happen by construction;
* **round-trip** — :meth:`Aig.from_netlist` lowers every
  :class:`~repro.netlist.gate.GateType`; :meth:`Aig.to_netlist`
  re-emits an equivalent AND/XOR/INV netlist with the original ports;
* **topological iteration** — ascending node id is a topological
  order (fanins are always created first);
* **liveness** — :meth:`Aig.live_nodes` marks the transitive fan-in
  of the outputs (the dead-node sweep);
* **simulation** — :meth:`Aig.simulate` mirrors the bit-parallel
  netlist semantics, the ground truth for the round-trip tests.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.netlist.gate import Gate, GateType
from repro.netlist.netlist import Netlist

#: Literal of the constant-0 function (node 0, uncomplemented).
CONST0 = 0
#: Literal of the constant-1 function (node 0, complemented).
CONST1 = 1

#: Node kinds (stored per node id).
_KIND_CONST = 0
_KIND_PI = 1
_KIND_AND = 2
_KIND_XOR = 3


class AigError(ValueError):
    """Structural problem while building or converting an AIG."""


def make_lit(node: int, complemented: bool = False) -> int:
    """Pack a node id and a complement flag into a literal."""
    return (node << 1) | int(complemented)


def lit_node(lit: int) -> int:
    """Node id of a literal."""
    return lit >> 1


def lit_is_complemented(lit: int) -> bool:
    """Whether the literal carries the complement attribute."""
    return bool(lit & 1)


def lit_complement(lit: int) -> int:
    """The inverted literal (edge complement — never a gate)."""
    return lit ^ 1


class Aig:
    """A hash-consed And-Inverter(-Xor) graph.

    >>> aig = Aig()
    >>> a, b = aig.add_input("a"), aig.add_input("b")
    >>> aig.aig_and(a, b) == aig.aig_and(b, a)       # CSE by construction
    True
    >>> aig.aig_xor(a, a)                            # cancellation
    0
    >>> aig.aig_and(a, lit_complement(a))            # a AND NOT a
    0
    """

    __slots__ = (
        "kinds",
        "fanin0",
        "fanin1",
        "pi_name",
        "inputs",
        "outputs",
        "name",
        "_leaf_lit",
        "_strash",
        "net_literal",
    )

    def __init__(self, name: str = "aig"):
        self.name = name
        #: Parallel node arrays; node 0 is the constant-0 node.
        self.kinds: List[int] = [_KIND_CONST]
        self.fanin0: List[int] = [0]
        self.fanin1: List[int] = [0]
        #: node id -> primary-input name (leaves only).
        self.pi_name: Dict[int, str] = {}
        #: Declared input names in declaration order (see from_netlist).
        self.inputs: List[str] = []
        #: (name, literal) pairs in output declaration order.
        self.outputs: List[Tuple[str, int]] = []
        self._leaf_lit: Dict[str, int] = {}
        self._strash: Dict[Tuple[int, int, int], int] = {}
        #: net name -> literal for every net of the source netlist
        #: (populated by from_netlist; empty for hand-built graphs).
        self.net_literal: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Number of nodes, constant node included."""
        return len(self.kinds)

    def _new_node(self, kind: int, f0: int, f1: int) -> int:
        node = len(self.kinds)
        self.kinds.append(kind)
        self.fanin0.append(f0)
        self.fanin1.append(f1)
        return node

    def add_input(self, name: str, declare: bool = True) -> int:
        """Literal of the named leaf, creating it on first sight.

        ``declare=False`` creates the leaf without listing it in
        :attr:`inputs` — how :meth:`from_netlist` represents nets a
        netlist reads but neither drives nor declares.
        """
        lit = self._leaf_lit.get(name)
        if lit is None:
            node = self._new_node(_KIND_PI, 0, 0)
            self.pi_name[node] = name
            lit = make_lit(node)
            self._leaf_lit[name] = lit
            if declare:
                self.inputs.append(name)
        return lit

    def aig_and(self, a: int, b: int) -> int:
        """Hash-consed AND of two literals.

        Beyond the local normalisations, the constructor recognises the
        3-AND NAND/AOI decompositions of XOR, XNOR and MUX (see
        :meth:`_detect_xor_mux`), so NAND-lowered netlists strash back
        to first-class XOR nodes instead of opaque AND clusters.
        """
        if a == CONST0 or b == CONST0 or a == lit_complement(b):
            return CONST0
        if a == CONST1 or a == b:
            return b
        if b == CONST1:
            return a
        if a & 1 and b & 1:
            detected = self._detect_xor_mux(a, b)
            if detected is not None:
                return detected
        if a > b:
            a, b = b, a
        key = (_KIND_AND, a, b)
        node = self._strash.get(key)
        if node is None:
            node = self._new_node(_KIND_AND, a, b)
            self._strash[key] = node
        return make_lit(node)

    def _detect_xor_mux(self, a: int, b: int) -> Optional[int]:
        """Structural XOR/XNOR/MUX recovery for ``AND(!X, !Y)`` shapes.

        Both operands are complemented edges; when both point at AND
        nodes the product is an OR of two product terms — exactly how
        technology mapping encodes XOR/XNOR/MUX in NAND/AOI logic:

        * ``!(p·q) · !(!p·!q)  =  p ⊕ q``  (the AOI22 / 5-NAND form);
        * ``!(p·w) · !(q·w)`` with ``w = !(p·q)``  =  ``¬(p ⊕ q)``
          (the shared-inner-NAND 4-NAND XOR the mapper emits);
        * ``!(d1·s) · !(d0·!s)  =  ¬MUX(s, d1, d0)`` (NAND-mapped mux;
          rebuilt through :meth:`aig_mux`, i.e. XOR/AND nodes).

        Rebuilding references strictly older nodes, so the recursion
        through :meth:`aig_xor`/:meth:`aig_mux` terminates; the old AND
        cluster simply goes dead unless shared elsewhere.  Returns the
        equivalent literal, or ``None`` when no shape matches.
        """
        na, nb = a >> 1, b >> 1
        if self.kinds[na] != _KIND_AND or self.kinds[nb] != _KIND_AND:
            return None
        p, q = self.fanin0[na], self.fanin1[na]
        r, s = self.fanin0[nb], self.fanin1[nb]
        # XOR: the two product terms cover complementary minterm pairs.
        if (r == lit_complement(p) and s == lit_complement(q)) or (
            r == lit_complement(q) and s == lit_complement(p)
        ):
            return self.aig_xor(p, q)
        # XNOR: both terms share w = !(p·q); !(p·w)·!(q·w) = ¬(p ⊕ q).
        for w in (r, s):
            if w not in (p, q) or not (w & 1):
                continue
            m = w >> 1
            if self.kinds[m] != _KIND_AND:
                continue
            other_a = q if w == p else p
            other_b = s if w == r else r
            g0, g1 = self.fanin0[m], self.fanin1[m]
            if {g0, g1} == {other_a, other_b}:
                return lit_complement(self.aig_xor(other_a, other_b))
        # MUX: exactly one complementary literal across the two terms
        # is the select; !(d1·s)·!(d0·!s) = s·!d1 + !s·!d0.
        for sel, d1 in ((p, q), (q, p)):
            for v, d0 in ((r, s), (s, r)):
                if v == lit_complement(sel):
                    return self.aig_mux(
                        sel, lit_complement(d1), lit_complement(d0)
                    )
        return None

    def aig_xor(self, a: int, b: int) -> int:
        """Hash-consed XOR; fanin complements are pulled to the output."""
        out = (a & 1) ^ (b & 1)
        a &= ~1
        b &= ~1
        if a == b:
            return out
        if a == CONST0:
            return b ^ out
        if b == CONST0:
            return a ^ out
        if a > b:
            a, b = b, a
        key = (_KIND_XOR, a, b)
        node = self._strash.get(key)
        if node is None:
            node = self._new_node(_KIND_XOR, a, b)
            self._strash[key] = node
        return make_lit(node) ^ out

    def aig_not(self, a: int) -> int:
        """Edge complement (free — no node is ever created)."""
        return lit_complement(a)

    def aig_or(self, a: int, b: int) -> int:
        """OR via De Morgan on the AND core."""
        return lit_complement(
            self.aig_and(lit_complement(a), lit_complement(b))
        )

    def aig_mux(self, sel: int, d1: int, d0: int) -> int:
        """2:1 multiplexer: ``d0 XOR (sel AND (d0 XOR d1))``."""
        return self.aig_xor(d0, self.aig_and(sel, self.aig_xor(d0, d1)))

    def aig_and_all(self, lits: Sequence[int]) -> int:
        """Balanced AND tree over any number of literals."""
        return self._balanced(list(lits), self.aig_and, CONST1)

    def aig_xor_all(self, lits: Sequence[int]) -> int:
        """Balanced XOR tree over any number of literals."""
        return self._balanced(list(lits), self.aig_xor, CONST0)

    def aig_or_all(self, lits: Sequence[int]) -> int:
        """Balanced OR tree over any number of literals."""
        return self._balanced(list(lits), self.aig_or, CONST0)

    @staticmethod
    def _balanced(layer: List[int], op, empty: int) -> int:
        if not layer:
            return empty
        while len(layer) > 1:
            paired = [
                op(layer[idx], layer[idx + 1])
                for idx in range(0, len(layer) - 1, 2)
            ]
            if len(layer) % 2:
                paired.append(layer[-1])
            layer = paired
        return layer[0]

    def add_output(self, name: str, lit: int) -> None:
        self.outputs.append((name, lit))

    # ------------------------------------------------------------------
    # Gate lowering
    # ------------------------------------------------------------------

    def gate_literal(self, gtype: GateType, operands: Sequence[int]) -> int:
        """Lower one netlist cell onto the AND/XOR/complement core.

        Covers every :class:`~repro.netlist.gate.GateType`, including
        the mapped AOI/OAI/MUX complex cells.
        """
        if gtype is GateType.CONST0:
            return CONST0
        if gtype is GateType.CONST1:
            return CONST1
        if gtype is GateType.BUF:
            return operands[0]
        if gtype is GateType.INV:
            return lit_complement(operands[0])
        if gtype is GateType.AND:
            return self.aig_and_all(operands)
        if gtype is GateType.NAND:
            return lit_complement(self.aig_and_all(operands))
        if gtype is GateType.OR:
            return self.aig_or_all(operands)
        if gtype is GateType.NOR:
            return lit_complement(self.aig_or_all(operands))
        if gtype is GateType.XOR:
            return self.aig_xor_all(operands)
        if gtype is GateType.XNOR:
            return lit_complement(self.aig_xor_all(operands))
        if gtype is GateType.AOI21:
            a, b, c = operands
            return self.aig_and(
                lit_complement(self.aig_and(a, b)), lit_complement(c)
            )
        if gtype is GateType.AOI22:
            a, b, c, d = operands
            return self.aig_and(
                lit_complement(self.aig_and(a, b)),
                lit_complement(self.aig_and(c, d)),
            )
        if gtype is GateType.OAI21:
            a, b, c = operands
            return lit_complement(self.aig_and(self.aig_or(a, b), c))
        if gtype is GateType.OAI22:
            a, b, c, d = operands
            return lit_complement(
                self.aig_and(self.aig_or(a, b), self.aig_or(c, d))
            )
        if gtype is GateType.MUX2:
            sel, d1, d0 = operands
            return self.aig_mux(sel, d1, d0)
        raise AigError(f"no AIG lowering for gate type {gtype}")

    # ------------------------------------------------------------------
    # Netlist round-trip
    # ------------------------------------------------------------------

    @classmethod
    def from_netlist(cls, netlist: Netlist) -> "Aig":
        """Build the hash-consed AIG of a netlist.

        Constant propagation, structural hashing and inverter-pair
        removal happen by construction; nets the netlist reads without
        driving (and without declaring) become extra leaves, so an
        incomplete cone stays representable — and detectable.

        >>> from repro.gen.mastrovito import generate_mastrovito
        >>> aig = Aig.from_netlist(generate_mastrovito(0b10011))
        >>> sorted(name for name, _ in aig.outputs)
        ['z0', 'z1', 'z2', 'z3']
        """
        aig = cls(netlist.name)
        literal: Dict[str, int] = {}
        for name in netlist.inputs:
            literal[name] = aig.add_input(name)
        for gate in netlist.topological_order():
            operands = [
                literal[net]
                if net in literal
                else literal.setdefault(
                    net, aig.add_input(net, declare=False)
                )
                for net in gate.inputs
            ]
            literal[gate.output] = aig.gate_literal(gate.gtype, operands)
        for net in netlist.outputs:
            if net not in literal:
                # Undriven primary output: surface it as a leaf, like
                # any other undriven net, rather than failing here.
                literal[net] = aig.add_input(net, declare=False)
            aig.add_output(net, literal[net])
        aig.net_literal = literal
        return aig

    def to_netlist(self, name: Optional[str] = None) -> Netlist:
        """Emit an equivalent AND/XOR/INV netlist.

        Ports keep their names; internal nodes receive fresh
        collision-free names; only live nodes are emitted (the
        dead-node sweep is implicit).

        >>> from repro.gen.mastrovito import generate_mastrovito
        >>> net = generate_mastrovito(0b10011)
        >>> back = Aig.from_netlist(net).to_netlist()
        >>> back.simulate({n: 1 for n in net.inputs}) == \\
        ...     net.simulate({n: 1 for n in net.inputs})
        True
        """
        result = Netlist(name or self.name, inputs=list(self.inputs))
        live = self.live_nodes()

        taken = set(self.pi_name.values()) | {n for n, _ in self.outputs}
        prefix = "__aig"
        while any(net.startswith(prefix) for net in taken):
            prefix += "_"

        # Primary outputs claim their driving node's net name when they
        # can (uncomplemented, non-leaf, first claimant) — mirroring the
        # named-PO-driver convention of the netlist-level passes.
        claimed: Dict[int, str] = {}
        for po_name, lit in self.outputs:
            node = lit_node(lit)
            if (
                not lit_is_complemented(lit)
                and self.kinds[node] in (_KIND_AND, _KIND_XOR)
                and node not in claimed
            ):
                claimed[node] = po_name

        node_net: Dict[int, str] = {}
        inv_net: Dict[int, str] = {}

        def net_of(lit: int) -> str:
            """Result-netlist net carrying this literal's function."""
            node = lit_node(lit)
            if lit_is_complemented(lit):
                net = inv_net.get(node)
                if net is None:
                    net = f"{prefix}n{node}"
                    result.add_gate(Gate(net, GateType.INV, (node_net[node],)))
                    inv_net[node] = net
                return net
            return node_net[node]

        for node in live:
            kind = self.kinds[node]
            if kind == _KIND_CONST:
                # Constants fold during construction, so node 0 can only
                # be reached by an output edge — handled below.
                continue
            elif kind == _KIND_PI:
                node_net[node] = self.pi_name[node]
            else:
                operands = (net_of(self.fanin0[node]), net_of(self.fanin1[node]))
                gtype = GateType.AND if kind == _KIND_AND else GateType.XOR
                net = claimed.get(node, f"{prefix}{node}")
                result.add_gate(Gate(net, gtype, operands))
                node_net[node] = net

        for po_name, lit in self.outputs:
            node = lit_node(lit)
            if lit == CONST0:
                result.add_gate(Gate(po_name, GateType.CONST0, ()))
            elif lit == CONST1:
                result.add_gate(Gate(po_name, GateType.CONST1, ()))
            elif claimed.get(node) == po_name and not lit_is_complemented(lit):
                pass  # the node was emitted under the PO's own name
            elif lit_is_complemented(lit):
                result.add_gate(Gate(po_name, GateType.INV, (node_net[node],)))
            else:
                result.add_gate(Gate(po_name, GateType.BUF, (node_net[node],)))
            result.add_output(po_name)
        return result

    # ------------------------------------------------------------------
    # Iteration / liveness / simulation
    # ------------------------------------------------------------------

    def fanins(self, node: int) -> Tuple[int, int]:
        """The two fanin literals of an AND/XOR node."""
        return self.fanin0[node], self.fanin1[node]

    def is_leaf(self, node: int) -> bool:
        return self.kinds[node] == _KIND_PI

    def is_and(self, node: int) -> bool:
        return self.kinds[node] == _KIND_AND

    def is_xor(self, node: int) -> bool:
        return self.kinds[node] == _KIND_XOR

    def live_nodes(self, roots: Optional[Iterable[int]] = None) -> List[int]:
        """Node ids in the transitive fan-in of ``roots``, ascending.

        ``roots`` defaults to the registered outputs; ascending id
        order is a topological order, so the result can be evaluated
        front to back.
        """
        if roots is None:
            roots = [lit_node(lit) for _, lit in self.outputs]
        seen = set()
        stack = list(roots)
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            if self.kinds[node] in (_KIND_AND, _KIND_XOR):
                stack.append(lit_node(self.fanin0[node]))
                stack.append(lit_node(self.fanin1[node]))
        return sorted(seen)

    def simulate(
        self, assignment: Mapping[str, int], width: int = 1
    ) -> Dict[str, int]:
        """Bit-parallel simulation, mirroring ``Netlist.simulate``."""
        mask = (1 << width) - 1
        values: List[int] = [0] * len(self.kinds)
        for node, name in self.pi_name.items():
            try:
                values[node] = assignment[name] & mask
            except KeyError:
                raise AigError(f"missing value for input {name!r}") from None
        for node in range(1, len(self.kinds)):
            kind = self.kinds[node]
            if kind == _KIND_PI:
                continue
            f0, f1 = self.fanin0[node], self.fanin1[node]
            v0 = values[lit_node(f0)] ^ (mask if f0 & 1 else 0)
            v1 = values[lit_node(f1)] ^ (mask if f1 & 1 else 0)
            values[node] = (v0 & v1) if kind == _KIND_AND else (v0 ^ v1)
        out: Dict[str, int] = {}
        for name, lit in self.outputs:
            value = values[lit_node(lit)]
            out[name] = (value ^ mask if lit & 1 else value) & mask
        return out

    def lit_value(self, lit: int, values: Sequence[int], mask: int = 1) -> int:
        """Value of a literal given per-node values (simulation helper)."""
        value = values[lit_node(lit)]
        return (value ^ mask if lit & 1 else value) & mask

    def __repr__(self) -> str:
        ands = sum(1 for kind in self.kinds if kind == _KIND_AND)
        xors = sum(1 for kind in self.kinds if kind == _KIND_XOR)
        return (
            f"Aig({self.name!r}, {len(self.pi_name)} leaves, "
            f"{ands} and, {xors} xor, {len(self.outputs)} outputs)"
        )
