"""K-feasible cut enumeration with truth tables.

A *cut* of node ``n`` is a set of nodes (the *leaves*) such that every
path from a primary input to ``n`` passes through a leaf; the cut is
k-feasible when it has at most ``k`` leaves.  Cuts are the unit of work
of ABC-style rewriting: the function of ``n`` over its cut leaves is a
tiny truth table, and whole multi-level regions (a four-NAND XOR, an
AOI cell's cone, an inverter ladder) collapse into one algebraic step.

This module enumerates cuts *root-locally* by frontier expansion —
start from the trivial cut ``{n}`` and repeatedly replace a non-leaf
frontier node by its fanins — rather than bottom-up over the whole
graph, because the cut-based engine only needs cuts for the sparse set
of nodes whose packed polynomials outgrow the flattening bound.

The truth table of a cut is computed by bit-parallel simulation of the
enclosed cone (one int per node, ``2^k`` lanes), and
:func:`truth_table_to_anf` converts it to the algebraic normal form —
the exact mod-2 polynomial over the cut leaves that backward rewriting
substitutes in a single step.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.aig.aig import Aig, lit_node

Cut = Tuple[int, ...]

#: (variable position, total variables) -> its standard truth-table
#: pattern, e.g. variable 0 of 2 is ``0b1010``.  Tiny and shared.
_PATTERNS: Dict[Tuple[int, int], int] = {}


def _variable_pattern(position: int, n_vars: int) -> int:
    pattern = _PATTERNS.get((position, n_vars))
    if pattern is None:
        pattern = 0
        for minterm in range(1 << n_vars):
            if (minterm >> position) & 1:
                pattern |= 1 << minterm
        _PATTERNS[(position, n_vars)] = pattern
    return pattern


def iter_cuts(aig: Aig, node: int, k: int = 4, limit: int = 16):
    """Lazily yield the cuts of :func:`enumerate_cuts`, nearest-first.

    Consumers that stop at the first acceptable cut (the flattening
    pass) avoid paying for the rest of the breadth-first frontier.
    """
    trivial: Cut = (node,)
    seen = {trivial}
    queue: List[Cut] = [trivial]
    head = 0
    yielded = 0
    while head < len(queue) and yielded < limit:
        cut = queue[head]
        head += 1
        yielded += 1
        yield cut
        for leaf in cut:
            if not (aig.is_and(leaf) or aig.is_xor(leaf)):
                continue
            f0, f1 = aig.fanins(leaf)
            expanded = set(cut)
            expanded.discard(leaf)
            expanded.add(lit_node(f0))
            expanded.add(lit_node(f1))
            if len(expanded) > k:
                continue
            candidate = tuple(sorted(expanded))
            if candidate not in seen:
                seen.add(candidate)
                queue.append(candidate)


def enumerate_cuts(
    aig: Aig, node: int, k: int = 4, limit: int = 16
) -> List[Cut]:
    """Cuts of ``node`` with at most ``k`` leaves, nearest-first.

    The first entry is always the trivial cut ``(node,)``; at most
    ``limit`` cuts are returned.  Every leaf id is strictly smaller
    than ``node`` (fanins precede their node), which is what lets the
    rewriting engine use any cut as a substitution model.

    >>> aig = Aig()
    >>> a, b = aig.add_input("a"), aig.add_input("b")
    >>> y = aig.aig_and(aig.aig_xor(a, b), a)
    >>> cuts = enumerate_cuts(aig, lit_node(y))
    >>> cuts[0] == (lit_node(y),)
    True
    >>> (lit_node(a), lit_node(b)) in cuts        # the PI-level cut
    True
    """
    return list(iter_cuts(aig, node, k=k, limit=limit))


def cut_truth_table(aig: Aig, node: int, leaves: Cut) -> int:
    """Truth table of ``node`` over ``leaves`` (bit ``i`` = minterm ``i``).

    Leaf ``j`` is variable ``j`` of the table (in the order given).
    ``leaves`` must actually be a cut of ``node`` — every PI-to-node
    path blocked — which holds for anything :func:`enumerate_cuts`
    returns.

    >>> aig = Aig()
    >>> a, b = aig.add_input("a"), aig.add_input("b")
    >>> y = aig.aig_xor(a, b)
    >>> bin(cut_truth_table(aig, lit_node(y), (lit_node(a), lit_node(b))))
    '0b110'
    """
    lanes = 1 << len(leaves)
    mask = (1 << lanes) - 1
    values: Dict[int, int] = {}
    for position, leaf in enumerate(leaves):
        values[leaf] = _variable_pattern(position, len(leaves))

    # Gather the cone between the leaves and the root, then evaluate
    # in ascending (topological) id order.
    cone: List[int] = []
    stack = [node]
    visited = set(leaves)
    while stack:
        current = stack.pop()
        if current in visited:
            continue
        visited.add(current)
        cone.append(current)
        if aig.is_and(current) or aig.is_xor(current):
            stack.append(lit_node(aig.fanin0[current]))
            stack.append(lit_node(aig.fanin1[current]))
    for current in sorted(cone):
        if current in values:
            continue
        if current == 0:
            values[current] = 0
            continue
        f0, f1 = aig.fanins(current)
        v0 = values[lit_node(f0)] ^ (mask if f0 & 1 else 0)
        v1 = values[lit_node(f1)] ^ (mask if f1 & 1 else 0)
        values[current] = (v0 & v1) if aig.is_and(current) else (v0 ^ v1)
    return values[node] & mask


def truth_table_to_anf(table: int, n_vars: int) -> List[int]:
    """Monomial masks of the ANF of an ``n_vars``-variable truth table.

    Returns the positive-coefficient monomials of the algebraic normal
    form (Möbius transform); mask bit ``j`` set means variable ``j``
    occurs, the empty mask is the constant monomial ``1``.

    >>> truth_table_to_anf(0b0110, 2)          # XOR
    [1, 2]
    >>> truth_table_to_anf(0b1000, 2)          # AND
    [3]
    >>> truth_table_to_anf(0b1001, 2)          # XNOR: 1 + a + b
    [0, 1, 2]
    """
    size = 1 << n_vars
    coefficients = [(table >> minterm) & 1 for minterm in range(size)]
    for position in range(n_vars):
        bit = 1 << position
        for minterm in range(size):
            if minterm & bit:
                coefficients[minterm] ^= coefficients[minterm ^ bit]
    return [mask for mask in range(size) if coefficients[mask]]
