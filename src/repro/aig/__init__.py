"""repro.aig — the hash-consed And-Inverter Graph IR.

Why a subsystem
---------------
Before this package, every layer that cared about netlist *structure*
reinvented its own canonical form: the synthesis pipeline rebuilt
string-named :class:`~repro.netlist.netlist.Netlist`\\ s pass by pass,
the service fingerprint re-ran strash plus a separate Merkle labelling
on every cache lookup, and the rewriting engines walked gate-by-gate
over named nets.  ABC's productivity comes from the opposite
arrangement: *one* hash-consed And-Inverter Graph that synthesis,
equivalence checking and technology mapping all share.  This package
is that shared representation.

The representation
------------------
* A **node** is an integer id into parallel arrays.  Node ``0`` is the
  constant-0 node; the others are primary inputs (leaves), two-input
  ANDs, or two-input XORs (XOR is first-class — GF(2^m) datapaths are
  XOR-dominated, and lowering XOR to three ANDs would hide exactly the
  structure the synthesis and extraction layers exploit).
* A **literal** is ``2 * node + complement``: inversion is a bit flip
  on the edge, never a gate.  ``CONST0 = 0`` and ``CONST1 = 1``.
* Construction is **hash-consed**: :meth:`Aig.aig_and` /
  :meth:`Aig.aig_xor` normalise their operands (constant folding,
  idempotence/cancellation, commutative ordering, complements pulled
  out of XOR fanins) and consult a structural table, so common
  subexpressions, inverter pairs and dead constants are eliminated *by
  construction* — strash is not a pass here, it is the data structure.
* Node ids are created fanin-first, so ascending id order **is** a
  topological order; :meth:`Aig.live_nodes` gives the dead-node sweep
  for free.

Round-trip and passes
---------------------
:meth:`Aig.from_netlist` lowers every
:class:`~repro.netlist.gate.GateType` (including the mapped AOI/OAI/
MUX cells) onto the AND/XOR/complement core;
:meth:`Aig.to_netlist` re-emits a plain ``AND``/``XOR``/``INV``
netlist with the original port names.  :mod:`repro.aig.balance`
rebalances XOR and AND trees AIG→AIG, and :mod:`repro.aig.cuts` enumerates
k-feasible cuts with truth tables — the unit of work for the
cut-based rewriting engine (:mod:`repro.engine.aig`).

Shared by
---------
* ``repro.synth`` — :func:`~repro.synth.pipeline.synthesize` builds
  the AIG once (constprop + strash + sweep fall out of construction),
  balances it, and hands the result to technology mapping; and
  :func:`~repro.synth.strash.structural_hash` uses AIG literal
  identity as its one and only equivalence oracle;
* ``repro.service`` — the content fingerprint derives its Merkle
  labels directly from the hash-consed node table in one traversal;
* ``repro.engine`` — the ``aig`` backend backward-rewrites cut-by-cut
  with each cut's packed PI-space polynomial precomputed through the
  bitpack interning machinery.
"""

from repro.aig.aig import (
    CONST0,
    CONST1,
    Aig,
    AigError,
    lit_complement,
    lit_is_complemented,
    lit_node,
    make_lit,
)
from repro.aig.balance import balance_and_trees, balance_xor_trees
from repro.aig.cuts import (
    cut_truth_table,
    enumerate_cuts,
    truth_table_to_anf,
)

__all__ = [
    "Aig",
    "AigError",
    "CONST0",
    "CONST1",
    "balance_and_trees",
    "balance_xor_trees",
    "cut_truth_table",
    "enumerate_cuts",
    "lit_complement",
    "lit_is_complemented",
    "lit_node",
    "make_lit",
    "truth_table_to_anf",
]
