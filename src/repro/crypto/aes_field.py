"""The AES byte field GF(2^8) and its round-function primitives.

AES fixes the irreducible polynomial ``x^8 + x^4 + x^3 + x + 1``
(0x11B).  Hardware implementations instantiate GF(2^8) multipliers and
inverters for SubBytes and MixColumns — precisely the components the
paper's technique audits.  This module provides the word-level
reference: the S-box built from field inversion plus the affine map,
and the MixColumns column transform, all validated against FIPS-197
vectors in the tests.

The ``aes_sbox_audit`` example closes the loop: it generates a
gate-level multiplier over 0x11B, recovers the polynomial with the
extractor, and rebuilds this reference field from the recovered mask.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.fieldmath.gf2m import GF2m

#: The AES field polynomial x^8 + x^4 + x^3 + x + 1.
AES_MODULUS = 0x11B

#: The AES field itself (module-level: it is a fixed constant of AES).
_FIELD = GF2m(AES_MODULUS)

#: Affine-map constant of SubBytes.
_AFFINE_CONSTANT = 0x63


def _affine_forward(value: int) -> int:
    """The SubBytes affine map ``b_i <- b_i ^ b_{i+4} ^ b_{i+5} ^
    b_{i+6} ^ b_{i+7} ^ c_i`` (indices mod 8)."""
    result = 0
    for i in range(8):
        bit = 0
        for offset in (0, 4, 5, 6, 7):
            bit ^= (value >> ((i + offset) % 8)) & 1
        bit ^= (_AFFINE_CONSTANT >> i) & 1
        result |= bit << i
    return result


def _affine_inverse(value: int) -> int:
    """Inverse of the SubBytes affine map."""
    result = 0
    for i in range(8):
        bit = 0
        for offset in (2, 5, 7):
            bit ^= (value >> ((i + offset) % 8)) & 1
        bit ^= (0x05 >> i) & 1
        result |= bit << i
    return result


def aes_sbox(byte: int, field: GF2m = _FIELD) -> int:
    """SubBytes: field inversion (0 -> 0) then the affine map.

    ``field`` is injectable so the audit example can run the S-box on
    a field rebuilt from a *recovered* polynomial.

    >>> hex(aes_sbox(0x00)), hex(aes_sbox(0x53))
    ('0x63', '0xed')
    """
    if not 0 <= byte < 256:
        raise ValueError("S-box input must be a byte")
    inverse = field.inv(byte) if byte else 0
    return _affine_forward(inverse)


def aes_inv_sbox(byte: int, field: GF2m = _FIELD) -> int:
    """InvSubBytes: inverse affine map, then field inversion.

    >>> aes_inv_sbox(aes_sbox(0xCA))
    202
    """
    if not 0 <= byte < 256:
        raise ValueError("S-box input must be a byte")
    linear = _affine_inverse(byte)
    return field.inv(linear) if linear else 0


def xtime(byte: int, field: GF2m = _FIELD) -> int:
    """Multiplication by x (i.e. 0x02) — the MixColumns primitive.

    >>> hex(xtime(0x80))
    '0x1b'
    """
    return field.mul(byte, 0x02)


#: MixColumns circulant matrix rows (multipliers of the column bytes).
_MIX_ROWS = ((2, 3, 1, 1), (1, 2, 3, 1), (1, 1, 2, 3), (3, 1, 1, 2))
_INV_MIX_ROWS = (
    (14, 11, 13, 9),
    (9, 14, 11, 13),
    (13, 9, 14, 11),
    (11, 13, 9, 14),
)


def _mix(column: Sequence[int], rows, field: GF2m) -> List[int]:
    if len(column) != 4:
        raise ValueError("a MixColumns column has exactly 4 bytes")
    out = []
    for row in rows:
        acc = 0
        for coefficient, byte in zip(row, column):
            acc ^= field.mul(coefficient, byte)
        out.append(acc)
    return out


def mix_column(column: Sequence[int], field: GF2m = _FIELD) -> List[int]:
    """The MixColumns transform of one state column.

    FIPS-197 test vector:

    >>> [hex(b) for b in mix_column([0xDB, 0x13, 0x53, 0x45])]
    ['0x8e', '0x4d', '0xa1', '0xbc']
    """
    return _mix(column, _MIX_ROWS, field)


def inv_mix_column(column: Sequence[int], field: GF2m = _FIELD) -> List[int]:
    """The InvMixColumns transform (inverse of :func:`mix_column`).

    >>> inv_mix_column(mix_column([1, 2, 3, 4]))
    [1, 2, 3, 4]
    """
    return _mix(column, _INV_MIX_ROWS, field)


def sbox_table(field: GF2m = _FIELD) -> List[int]:
    """The full 256-entry S-box table for a given byte field."""
    return [aes_sbox(byte, field) for byte in range(256)]
