"""Cryptographic applications of GF(2^m) — the paper's motivation.

The introduction motivates reverse engineering of field polynomials
with ECC and AES hardware.  This package supplies those application
layers on top of :mod:`repro.fieldmath`, so the examples can carry a
recovered P(x) all the way to a working protocol:

``ecc``
    binary-field elliptic curves (ECC): point arithmetic, scalar
    multiplication, Diffie-Hellman, plus the NIST K-163 parameters;
``aes_field``
    the AES byte field GF(2^8): S-box from field inversion + affine
    map, the MixColumns column transform, and the circuit constants.
"""

from repro.crypto.ecc import (
    INFINITY,
    BinaryCurve,
    Point,
    koblitz_curve_k163,
)
from repro.crypto.aes_field import (
    AES_MODULUS,
    aes_sbox,
    aes_inv_sbox,
    mix_column,
    inv_mix_column,
    xtime,
)

__all__ = [
    "INFINITY",
    "BinaryCurve",
    "Point",
    "koblitz_curve_k163",
    "AES_MODULUS",
    "aes_sbox",
    "aes_inv_sbox",
    "mix_column",
    "inv_mix_column",
    "xtime",
]
