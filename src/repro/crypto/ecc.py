"""Elliptic curves over binary fields GF(2^m).

A non-supersingular binary curve is

    E: y^2 + x·y = x^3 + a·x^2 + b      (b != 0)

with points in GF(2^m) x GF(2^m) plus the point at infinity.  This is
the curve family behind the NIST B-/K- curves whose field sizes (163,
233, 283, 409, 571) are exactly the multiplier widths of the paper's
Tables I and II — ECC hardware is where those GF multipliers live.

The module implements the affine group law, double-and-add scalar
multiplication, and Diffie-Hellman on top of it.  Field arithmetic
goes through :class:`~repro.fieldmath.gf2m.GF2m`, so a curve can be
instantiated directly from a *recovered* irreducible polynomial — the
``ecc_key_exchange`` example does exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.fieldmath.bitpoly import bitpoly_str
from repro.fieldmath.gf2m import GF2m
from repro.fieldmath.polynomial_db import nist_polynomial

#: The point at infinity (the group identity).
INFINITY: Optional["Point"] = None


@dataclass(frozen=True)
class Point:
    """An affine point (x, y); the identity is ``None`` (INFINITY)."""

    x: int
    y: int

    def __str__(self) -> str:
        return f"({self.x:#x}, {self.y:#x})"


class BinaryCurve:
    """``y^2 + xy = x^3 + a·x^2 + b`` over GF(2^m).

    >>> curve = BinaryCurve(GF2m(0b10011), a=0b1000, b=0b1001)
    >>> points = curve.enumerate_points()
    >>> all(curve.is_on_curve(p) for p in points if p is not None)
    True
    """

    def __init__(self, field: GF2m, a: int, b: int):
        if b == 0:
            raise ValueError(
                "b must be nonzero (the curve would be singular)"
            )
        self.field = field
        self.a = a
        self.b = b

    def __repr__(self) -> str:
        return (
            f"BinaryCurve(GF(2^{self.field.m}) mod "
            f"{bitpoly_str(self.field.modulus)}, a={self.a:#x}, "
            f"b={self.b:#x})"
        )

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def is_on_curve(self, point: Optional[Point]) -> bool:
        """True for the identity and for affine points satisfying E."""
        if point is None:
            return True
        gf = self.field
        x, y = point.x, point.y
        lhs = gf.add(gf.mul(y, y), gf.mul(x, y))
        x_sq = gf.mul(x, x)
        rhs = gf.add(
            gf.add(gf.mul(x_sq, x), gf.mul(self.a, x_sq)), self.b
        )
        return lhs == rhs

    def _require_on_curve(self, point: Optional[Point]) -> None:
        if not self.is_on_curve(point):
            raise ValueError(f"{point} is not on {self!r}")

    # ------------------------------------------------------------------
    # Group law
    # ------------------------------------------------------------------

    def negate(self, point: Optional[Point]) -> Optional[Point]:
        """The inverse of a point: ``-(x, y) = (x, x + y)``."""
        if point is None:
            return None
        return Point(point.x, self.field.add(point.x, point.y))

    def add(
        self, lhs: Optional[Point], rhs: Optional[Point]
    ) -> Optional[Point]:
        """The affine group law (handles identity/doubling/inverses)."""
        gf = self.field
        if lhs is None:
            return rhs
        if rhs is None:
            return lhs
        if lhs.x == rhs.x:
            if gf.add(lhs.y, rhs.y) == lhs.x or (
                lhs.x == 0 and lhs.y == rhs.y
            ):
                # rhs = -lhs (covers the x = 0 self-inverse case too).
                return None
            if lhs.y == rhs.y:
                return self.double(lhs)
            return None  # same x, inverse y
        slope = gf.div(gf.add(lhs.y, rhs.y), gf.add(lhs.x, rhs.x))
        x3 = gf.add(
            gf.add(gf.add(gf.mul(slope, slope), slope), self.a),
            gf.add(lhs.x, rhs.x),
        )
        y3 = gf.add(
            gf.add(gf.mul(slope, gf.add(lhs.x, x3)), x3), lhs.y
        )
        return Point(x3, y3)

    def double(self, point: Optional[Point]) -> Optional[Point]:
        """Point doubling; 2P = infinity when x = 0."""
        if point is None:
            return None
        gf = self.field
        if point.x == 0:
            return None
        slope = gf.add(point.x, gf.div(point.y, point.x))
        x3 = gf.add(gf.add(gf.mul(slope, slope), slope), self.a)
        y3 = gf.add(
            gf.add(gf.mul(point.x, point.x), gf.mul(slope, x3)), x3
        )
        return Point(x3, y3)

    def scalar_mult(
        self, scalar: int, point: Optional[Point]
    ) -> Optional[Point]:
        """``scalar · point`` by left-to-right double-and-add.

        Negative scalars multiply the point's inverse.
        """
        if scalar < 0:
            return self.scalar_mult(-scalar, self.negate(point))
        result: Optional[Point] = None
        addend = point
        while scalar:
            if scalar & 1:
                result = self.add(result, addend)
            addend = self.double(addend)
            scalar >>= 1
        return result

    # ------------------------------------------------------------------
    # Utilities
    # ------------------------------------------------------------------

    def enumerate_points(self) -> List[Optional[Point]]:
        """All points including infinity (small fields only)."""
        if self.field.m > 12:
            raise ValueError("refusing to enumerate a large curve")
        points: List[Optional[Point]] = [None]
        for x in self.field.elements():
            for y in self.field.elements():
                candidate = Point(x, y)
                if self.is_on_curve(candidate):
                    points.append(candidate)
        return points

    def order_of(self, point: Optional[Point], bound: int = 1 << 16) -> int:
        """Order of a point in the group (bounded walk)."""
        current = point
        for order in range(1, bound + 1):
            if current is None:
                return order
            current = self.add(current, point)
        raise ValueError("order exceeds bound")

    def diffie_hellman(
        self,
        base: Point,
        private_a: int,
        private_b: int,
    ) -> Tuple[Optional[Point], Optional[Point], Optional[Point]]:
        """One ECDH exchange: returns (pub_a, pub_b, shared).

        The shared secret is computed from A's side; the symmetry
        ``d_A · (d_B · G) == d_B · (d_A · G)`` is checked by the tests.
        """
        self._require_on_curve(base)
        pub_a = self.scalar_mult(private_a, base)
        pub_b = self.scalar_mult(private_b, base)
        shared = self.scalar_mult(private_a, pub_b)
        return pub_a, pub_b, shared


def koblitz_curve_k163() -> Tuple[BinaryCurve, Point, int]:
    """The NIST K-163 Koblitz curve: (curve, generator, group order).

    K-163 lives in GF(2^163) under the NIST field polynomial
    ``x^163 + x^7 + x^6 + x^3 + 1``.  The constants are self-checking:
    the tests assert the generator satisfies the curve equation and
    that ``order · G`` is the identity.
    """
    field = GF2m(nist_polynomial(163))
    curve = BinaryCurve(field, a=1, b=1)
    generator = Point(
        0x02FE13C0537BBC11ACAA07D793DE4E6D5E5C94EEE8,
        0x0289070FB05D38FF58321F2E800536D538CCDAA3D9,
    )
    order = 0x04000000000000000000020108A2E0CC0D99F8A5EF
    return curve, generator, order
