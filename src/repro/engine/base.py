"""Engine interface: what every backward-rewriting backend provides.

An :class:`Engine` turns one output cone of a netlist into the
canonical GF(2) expression of that output bit.  Backends differ only in
their *internal* expression representation; the contract is:

* :meth:`Engine.rewrite_cone` returns a :class:`ConeExpression` — the
  backend-native form — plus the usual
  :class:`~repro.rewrite.backward.RewriteStats`;
* a :class:`ConeExpression` answers the two questions Algorithm 2 and
  the verifier ask (out-field membership, equality against a
  specification polynomial) *without* leaving the native representation,
  and :meth:`ConeExpression.decode`\\ s to a
  :class:`~repro.gf2.polynomial.Gf2Poly` at the API boundary;
* every backend signals failures with the reference exception types —
  :class:`~repro.rewrite.backward.BackwardRewriteError` for structural
  defects (same netlists fail on every backend) and
  :class:`~repro.rewrite.backward.TermLimitExceeded` when
  ``term_limit`` is exceeded; the limit bounds each backend's *own*
  intermediate representation, so the memory-out point may differ
  between backends.
"""

from __future__ import annotations

import abc
from typing import ClassVar, Iterable, Optional, Tuple

from repro.gf2.monomial import Monomial
from repro.gf2.polynomial import Gf2Poly
from repro.netlist.netlist import Netlist
from repro.rewrite.backward import RewriteStats


class EngineError(ValueError):
    """Unknown engine name or invalid engine registration."""


class ConeExpression(abc.ABC):
    """A backend-native canonical expression of one output bit."""

    @abc.abstractmethod
    def decode(self) -> Gf2Poly:
        """Convert to the reference representation (API boundary)."""

    @abc.abstractmethod
    def term_count(self) -> int:
        """Number of monomials (the paper's expression-size metric)."""

    @abc.abstractmethod
    def contains_products(self, products: Iterable[Monomial]) -> bool:
        """Algorithm 2 line 6: is every given monomial present?"""

    @abc.abstractmethod
    def equals_poly(self, poly: Gf2Poly) -> bool:
        """Equality against a specification polynomial (verifier)."""


class Engine(abc.ABC):
    """One backward-rewriting backend."""

    #: Registry name of the backend (e.g. ``"reference"``).
    name: ClassVar[str] = ""

    @abc.abstractmethod
    def rewrite_cone(
        self,
        netlist: Netlist,
        output: str,
        trace: bool = False,
        term_limit: Optional[int] = None,
    ) -> Tuple[ConeExpression, RewriteStats]:
        """Algorithm 1 on one output cone, in native representation."""

    def rewrite(
        self,
        netlist: Netlist,
        output: str,
        trace: bool = False,
        term_limit: Optional[int] = None,
    ) -> Tuple[Gf2Poly, RewriteStats]:
        """Algorithm 1 with the result decoded to :class:`Gf2Poly`."""
        expression, stats = self.rewrite_cone(
            netlist, output, trace=trace, term_limit=term_limit
        )
        return expression.decode(), stats

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
