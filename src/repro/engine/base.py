"""Engine interface: what every backward-rewriting backend provides.

An :class:`Engine` turns one output cone of a netlist into the
canonical GF(2) expression of that output bit.  Backends differ only in
their *internal* expression representation; the contract is:

* :meth:`Engine.rewrite_cone` returns a :class:`ConeExpression` — the
  backend-native form — plus the usual
  :class:`~repro.rewrite.backward.RewriteStats`;
* a :class:`ConeExpression` answers the two questions Algorithm 2 and
  the verifier ask (out-field membership, equality against a
  specification polynomial) *without* leaving the native representation,
  and :meth:`ConeExpression.decode`\\ s to a
  :class:`~repro.gf2.polynomial.Gf2Poly` at the API boundary;
* every backend signals failures with the reference exception types —
  :class:`~repro.rewrite.backward.BackwardRewriteError` for structural
  defects (same netlists fail on every backend) and
  :class:`~repro.rewrite.backward.TermLimitExceeded` when
  ``term_limit`` is exceeded; the limit bounds each backend's *own*
  intermediate representation, so the memory-out point may differ
  between backends.

Compiled programs
-----------------
Backends that precompile a netlist into a reusable *program* (bitpack,
aig, vector) derive from :class:`CompilingEngine`, which owns the
per-netlist weak cache, the pickle round-trip, and the
``compile_cache=`` hook: when a caller passes an object with the
``get_compiled`` / ``put_compiled`` contract of
:class:`repro.service.cache.ResultCache`, a freshly-compiled program
is stored under ``(fingerprint, engine, compile_schema)`` and the next
cold process loads it instead of recompiling — the one-time compile
tax becomes a once-*ever* tax per distinct structure.  Fingerprints
are strash-invariant while compiled programs may depend on internal
net names and gate order, so every serialized program carries an exact
:func:`netlist_token`; a cache entry whose token mismatches the
netlist in hand (same structure, different spelling) is recompiled
rather than mis-served.  ``compile_schema`` is each backend's own
layout version: bumping it retires every stored program of that
backend without touching the others.
"""

from __future__ import annotations

import abc
import contextlib
import hashlib
import pickle
from typing import Any, ClassVar, Iterable, Optional, Tuple
from weakref import WeakKeyDictionary

from repro import telemetry as _telemetry
from repro.gf2.monomial import Monomial
from repro.gf2.polynomial import Gf2Poly
from repro.netlist.netlist import Netlist
from repro.rewrite.backward import RewriteStats


class EngineError(ValueError):
    """Unknown engine name or invalid engine registration."""


def cone_span(engine: "Engine", output: str):
    """The ``"cone"`` telemetry span of one ``rewrite_cone`` call.

    Engines delegate special cases to a parent class's ``rewrite_cone``
    (the vector engine's flat path reuses the aig path verbatim); when
    the caller is already inside this cone's span, the open span is
    reused instead of double-counting the same work as a nested twin.
    """
    telemetry = _telemetry.current()
    active = telemetry.active_span()
    if (
        active is not None
        and active.name == "cone"
        and active.attrs.get("output") == output
    ):
        return contextlib.nullcontext(active)
    return telemetry.span("cone", engine=engine.name, output=output)


class ConeExpression(abc.ABC):
    """A backend-native canonical expression of one output bit."""

    @abc.abstractmethod
    def decode(self) -> Gf2Poly:
        """Convert to the reference representation (API boundary)."""

    @abc.abstractmethod
    def term_count(self) -> int:
        """Number of monomials (the paper's expression-size metric)."""

    @abc.abstractmethod
    def contains_products(self, products: Iterable[Monomial]) -> bool:
        """Algorithm 2 line 6: is every given monomial present?"""

    @abc.abstractmethod
    def equals_poly(self, poly: Gf2Poly) -> bool:
        """Equality against a specification polynomial (verifier)."""


class Engine(abc.ABC):
    """One backward-rewriting backend."""

    #: Registry name of the backend (e.g. ``"reference"``).
    name: ClassVar[str] = ""

    #: Layout version of the backend's compiled program; ``None`` for
    #: backends that do not compile (see :class:`CompilingEngine`).
    compile_schema: ClassVar[Optional[int]] = None

    @abc.abstractmethod
    def rewrite_cone(
        self,
        netlist: Netlist,
        output: str,
        trace: bool = False,
        term_limit: Optional[int] = None,
        compile_cache: Optional[Any] = None,
    ) -> Tuple[ConeExpression, RewriteStats]:
        """Algorithm 1 on one output cone, in native representation.

        ``compile_cache`` (anything with the ``get_compiled`` /
        ``put_compiled`` contract of
        :class:`repro.service.cache.ResultCache`) lets compiling
        backends load/store their compiled program; non-compiling
        backends ignore it.
        """

    def rewrite_cones(
        self,
        netlist: Netlist,
        outputs: Iterable[str],
        term_limit: Optional[int] = None,
        compile_cache: Optional[Any] = None,
        max_bytes: Optional[int] = None,
    ) -> "dict[str, Tuple[ConeExpression, RewriteStats]]":
        """Algorithm 1 on several output cones of one netlist.

        The default implementation is the per-bit loop — one
        :meth:`rewrite_cone` call per output, in request order — so
        every backend supports the multi-root entry point.  Backends
        with a genuinely *fused* substitution sweep (the numpy
        ``vector`` engine rewrites all cones in one tagged bit-matrix)
        override this; callers reach it through ``fused=True`` on
        :func:`repro.rewrite.parallel.extract_expressions` and degrade
        cleanly to this loop everywhere else.  ``max_bytes`` caps the
        fused sweep's live matrix (the out-of-core tier); per-bit
        backends have no single shared matrix and ignore it.
        """
        # Forward the cache only when one was given, mirroring
        # :meth:`rewrite`: ad-hoc backends written against the
        # pre-cache rewrite_cone signature keep working.
        extra = (
            {"compile_cache": compile_cache}
            if compile_cache is not None
            else {}
        )
        return {
            output: self.rewrite_cone(
                netlist, output, term_limit=term_limit, **extra
            )
            for output in outputs
        }

    def rewrite(
        self,
        netlist: Netlist,
        output: str,
        trace: bool = False,
        term_limit: Optional[int] = None,
        compile_cache: Optional[Any] = None,
    ) -> Tuple[Gf2Poly, RewriteStats]:
        """Algorithm 1 with the result decoded to :class:`Gf2Poly`."""
        # Forward the cache only when one was given: injected ad-hoc
        # backends written against the pre-cache rewrite_cone
        # signature keep working as long as no cache is involved.
        extra = (
            {"compile_cache": compile_cache}
            if compile_cache is not None
            else {}
        )
        expression, stats = self.rewrite_cone(
            netlist, output, trace=trace, term_limit=term_limit, **extra
        )
        return expression.decode(), stats

    def prepare(
        self, netlist: Netlist, compile_cache: Optional[Any] = None
    ) -> None:
        """Warm whatever per-netlist state the backend keeps (no-op
        here; compiling backends ensure their program is ready so that
        forked workers inherit it copy-on-write)."""

    def finalize(
        self, netlist: Netlist, compile_cache: Optional[Any] = None
    ) -> None:
        """Persist per-netlist state grown during rewriting (no-op
        here; see :meth:`CompilingEngine.finalize`)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def netlist_token(netlist: Netlist) -> str:
    """Exact-content token of a netlist (ports, gates, order, names).

    Content fingerprints are deliberately strash-*invariant*, but a
    compiled program may bake in topological gate positions and
    internal net names — properties two same-fingerprint netlists can
    disagree on.  The token ties a serialized program to the exact
    netlist text it was compiled from, so a fingerprint collision
    between structural twins degrades to a recompile, never to a
    mis-served program.
    """
    parts = [
        "\x1e".join(netlist.inputs),
        "\x1e".join(netlist.outputs),
    ]
    parts.extend(
        "\x1e".join((gate.output, gate.gtype.name) + tuple(gate.inputs))
        for gate in netlist.gates
    )
    # One join + one hash pass: this runs on every warm program load,
    # so per-gate digest updates would dominate the load itself.
    return hashlib.sha256("\x1f".join(parts).encode("utf-8")).hexdigest()


#: Sentinel distinguishing "never persisted to a cache" from a stored
#: marker that happens to be ``None`` (backends without markers).
_UNSTORED = object()


class CompilingEngine(Engine):
    """Shared machinery for backends with a per-netlist compile step.

    Subclasses implement :meth:`_compile` (netlist → program object;
    the program must expose ``n_gates`` for the in-memory staleness
    check and must pickle) and set :attr:`Engine.compile_schema`.
    Everything else — the weak in-process cache, the serialized
    envelope, token validation, the ``compile_cache`` round-trip — is
    inherited.
    """

    #: Cache key namespace for stored programs.  Defaults to the
    #: engine name; backends that share one program format (``aig``
    #: and ``vector`` both compile a ``_CompiledAig``) share the key
    #: so a campaign never compiles the same structure twice even
    #: across those backends.
    compile_key: ClassVar[str] = ""

    def __init__(self) -> None:
        self._compiled: "WeakKeyDictionary[Netlist, Any]" = (
            WeakKeyDictionary()
        )
        self._stored_marker: "WeakKeyDictionary[Netlist, Any]" = (
            WeakKeyDictionary()
        )

    @abc.abstractmethod
    def _compile(self, netlist: Netlist) -> Any:
        """Build the backend's compiled program for one netlist."""

    def _program_marker(self, compiled: Any) -> Optional[Any]:
        """State marker deciding whether :meth:`finalize` re-stores.

        ``None`` (the default) means the program never grows after
        compilation.  Backends whose program accretes reusable state
        during rewriting (the aig/vector engines build cut models
        lazily) return a cheap marker that changes when it does.
        """
        del compiled
        return None

    def _compiled_for(
        self, netlist: Netlist, compile_cache: Optional[Any] = None
    ) -> Any:
        compiled = self._compiled.get(netlist)
        if compiled is not None and compiled.n_gates == len(netlist):
            if (
                compile_cache is not None
                and self._stored_marker.get(netlist, _UNSTORED)
                is _UNSTORED
            ):
                # Compiled earlier without any cache in play; a cache
                # has appeared, so persist the program now — otherwise
                # "once ever" would silently mean "once per process".
                self._store(netlist, compiled, compile_cache)
            return compiled
        compiled = None
        # The span covers the cache load *and* the compile: a warm
        # load is the compile phase of that run, just a cheap one.
        with _telemetry.current().span(
            "compile", engine=self.name, gates=len(netlist)
        ) as span:
            if compile_cache is not None:
                compiled = self._load_compiled(netlist, compile_cache)
            fresh = compiled is None
            if fresh:
                compiled = self._compile(netlist)
            span.annotate(cached=not fresh)
        self._compiled[netlist] = compiled
        if compile_cache is not None:
            if fresh:
                self._store(netlist, compiled, compile_cache)
            else:
                self._stored_marker[netlist] = self._program_marker(
                    compiled
                )
        return compiled

    def _store(
        self, netlist: Netlist, compiled: Any, compile_cache: Any
    ) -> None:
        compile_cache.put_compiled(
            netlist,
            self.compile_key or self.name,
            self.compile_schema,
            self.serialize_compiled(netlist, compiled),
        )
        self._stored_marker[netlist] = self._program_marker(compiled)

    def _load_compiled(
        self, netlist: Netlist, compile_cache: Any
    ) -> Optional[Any]:
        payload = compile_cache.get_compiled(
            netlist, self.compile_key or self.name, self.compile_schema
        )
        if payload is None:
            return None
        compiled = self.deserialize_compiled(netlist, payload)
        if compiled is None:
            # The read counted as a hit, but the payload was unusable
            # (token mismatch, corruption) and a recompile follows —
            # let the cache's stats reflect that.
            rejected = getattr(compile_cache, "note_compile_rejected", None)
            if rejected is not None:
                rejected()
        return compiled

    def serialize_compiled(self, netlist: Netlist, compiled: Any) -> bytes:
        """Pickle the program together with its exact-netlist token."""
        return pickle.dumps(
            (netlist_token(netlist), compiled),
            protocol=pickle.HIGHEST_PROTOCOL,
        )

    def deserialize_compiled(
        self, netlist: Netlist, payload: bytes
    ) -> Optional[Any]:
        """The stored program, or ``None`` when it does not fit.

        A corrupt payload or a token mismatch (a structural twin with
        different internal naming hit the same fingerprint) degrades
        to a recompile.
        """
        try:
            token, compiled = pickle.loads(payload)
        except Exception:  # noqa: BLE001 - any corruption means miss
            return None
        if token != netlist_token(netlist):
            return None
        if getattr(compiled, "n_gates", None) != len(netlist):
            return None
        return compiled

    def prepare(
        self, netlist: Netlist, compile_cache: Optional[Any] = None
    ) -> None:
        """Ensure the compiled program exists (loading it from
        ``compile_cache`` when possible, storing it when fresh)."""
        self._compiled_for(netlist, compile_cache)

    def finalize(
        self, netlist: Netlist, compile_cache: Optional[Any] = None
    ) -> None:
        """Re-store the program if rewriting grew it since the last
        store (lazily built cut models travel with the program, so the
        next cold process skips rebuilding them too).  A no-op for
        backends whose programs are complete at compile time."""
        if compile_cache is None:
            return
        compiled = self._compiled.get(netlist)
        if compiled is None:
            return
        marker = self._program_marker(compiled)
        stored = self._stored_marker.get(netlist, _UNSTORED)
        if stored is not _UNSTORED and (marker is None or marker == stored):
            return
        self._store(netlist, compiled, compile_cache)
