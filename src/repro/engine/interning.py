"""Signal interning — the name⇄bit-index dictionary of one cone.

The bit-packed engine never touches signal names on its hot path: every
signal occurring in an output cone is *interned* to a small integer bit
index, a monomial becomes a single python ``int`` bitmask, and monomial
multiplication / variable stripping become ``|`` / ``& ~mask``.  The
interner is the only component that still knows the names, so it also
owns the decode direction (mask → :data:`~repro.gf2.monomial.Monomial`)
used at the API boundary.

Index assignment is first-seen order.  During backward rewriting the
output variable is interned first and every other signal on first
occurrence in a gate model, so indices roughly follow the reverse
topological order of the cone: a signal's bit is allocated shortly
before its driver gate eliminates it again, which keeps the live
bitmasks compact.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.gf2.monomial import Monomial


class SignalInterner:
    """Bidirectional map between signal names and bit indices."""

    __slots__ = ("_index", "_names")

    def __init__(self, names: Iterable[str] = ()):
        self._index: Dict[str, int] = {}
        self._names: List[str] = []
        for name in names:
            self.index(name)

    @classmethod
    def adopt(
        cls, index: Dict[str, int], names: List[str]
    ) -> "SignalInterner":
        """Wrap already-built interning tables without copying.

        The caller hands over ownership: ``names[index[n]] == n`` must
        hold for every entry, and the tables must not be mutated
        afterwards except through the interner.  The bit-packed engine
        uses this to run its hot loop on raw dict/list locals and only
        materialise the interner for the result.
        """
        interner = cls.__new__(cls)
        interner._index = index
        interner._names = names
        return interner

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    @property
    def names(self) -> List[str]:
        """Interned names in index order (index ``i`` → ``names[i]``)."""
        return list(self._names)

    def index(self, name: str) -> int:
        """Bit index of ``name``, interning it on first sight."""
        idx = self._index.get(name)
        if idx is None:
            idx = len(self._names)
            self._index[name] = idx
            self._names.append(name)
        return idx

    def index_of(self, name: str) -> Optional[int]:
        """Bit index of an already-interned name, else ``None``."""
        return self._index.get(name)

    def pack(self, mono: Monomial) -> int:
        """Pack a monomial into a bitmask, interning new names.

        The constant monomial ``1`` (empty set) packs to ``0``.
        """
        mask = 0
        for name in mono:
            mask |= 1 << self.index(name)
        return mask

    def try_pack(self, mono: Monomial) -> Optional[int]:
        """Pack without interning; ``None`` when a name is unknown.

        Used by membership tests: a monomial over a never-seen signal
        cannot occur in any expression of this cone.
        """
        mask = 0
        index = self._index
        for name in mono:
            idx = index.get(name)
            if idx is None:
                return None
            mask |= 1 << idx
        return mask

    def unpack(self, mask: int) -> Monomial:
        """Decode a bitmask back to a monomial (frozenset of names)."""
        return frozenset(self.names_of(mask))

    def names_of(self, mask: int) -> List[str]:
        """Names of the set bits of ``mask`` (ascending index order)."""
        names = self._names
        out: List[str] = []
        while mask:
            low = mask & -mask
            out.append(names[low.bit_length() - 1])
            mask ^= low
        return out
