"""Backend registry: name → engine factory, with availability probes.

The rest of the system selects a backend by name (``engine="bitpack"``
in the library API, ``--engine bitpack`` on the CLI); the registry maps
those names to lazily-constructed singleton :class:`Engine` instances.
Third-party backends register themselves with :func:`register_engine`
— the only requirement is the :class:`~repro.engine.base.Engine`
interface and exception contract.

Backends with optional dependencies (``vector`` needs numpy, ``cuda``
needs cupy plus a visible CUDA device) register unconditionally with a
**probe** — a callable returning ``None`` when the backend is usable
or a human-readable reason when it is not.  :func:`available_engines`
lists only the usable ones (so differential suites and benchmarks
iterate exactly what runs here), :func:`registered_engines` lists
everything, and :func:`engine_availability` maps every registered name
to its reason.  Asking for a registered-but-unusable engine fails with
the *reason* ("cupy is not installed …"), not with "unknown engine" —
the difference between an actionable error and a confusing one.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple, Union

from repro.engine.base import Engine, EngineError

#: The backend used when callers do not ask for one explicitly.
DEFAULT_ENGINE = "reference"

#: Graceful-degradation ladder, most capable first.  When fallback is
#: enabled, an unavailable or runtime-failing backend degrades to the
#: next rung that is *usable* (per :func:`engine_availability`); every
#: rung produces bit-identical results, so degradation trades only
#: speed, never answers.
FALLBACK_LADDER: Tuple[str, ...] = (
    "cuda",
    "vector",
    "aig",
    "bitpack",
    "reference",
)


def fallback_chain(engine: str) -> Tuple[str, ...]:
    """The degradation ladder starting at ``engine``.

    An engine on the ladder degrades to the rungs *below* it; an
    unknown/custom engine degrades to the whole built-in ladder (most
    capable first).  The chain always starts with ``engine`` itself
    and never repeats a name.

    >>> fallback_chain("vector")
    ('vector', 'aig', 'bitpack', 'reference')
    >>> fallback_chain("reference")
    ('reference',)
    """
    if engine in FALLBACK_LADDER:
        index = FALLBACK_LADDER.index(engine)
        return FALLBACK_LADDER[index:]
    return (engine,) + FALLBACK_LADDER

_FACTORIES: Dict[str, Callable[[], Engine]] = {}
_INSTANCES: Dict[str, Engine] = {}
_PROBES: Dict[str, Callable[[], Optional[str]]] = {}


def register_engine(
    name: str,
    factory: Callable[[], Engine],
    overwrite: bool = False,
    probe: Optional[Callable[[], Optional[str]]] = None,
) -> None:
    """Register a backend factory under ``name``.

    ``overwrite=False`` protects the built-in backends from accidental
    shadowing; pass ``True`` to deliberately replace one.  ``probe``
    (optional) reports why the backend is unusable — ``None`` for
    usable — and is consulted on every listing/resolution, so a
    dependency installed mid-process is picked up.
    """
    if not name:
        raise EngineError("engine name must be non-empty")
    if name in _FACTORIES and not overwrite:
        raise EngineError(f"engine {name!r} is already registered")
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)
    if probe is not None:
        _PROBES[name] = probe
    else:
        _PROBES.pop(name, None)


def _unavailable_reason(name: str) -> Optional[str]:
    probe = _PROBES.get(name)
    if probe is None:
        return None
    return probe()


def available_engines() -> Tuple[str, ...]:
    """*Usable* backend names, sorted (probes passing)."""
    return tuple(
        sorted(
            name
            for name in _FACTORIES
            if _unavailable_reason(name) is None
        )
    )


def registered_engines() -> Tuple[str, ...]:
    """Every registered backend name, sorted, usable or not."""
    return tuple(sorted(_FACTORIES))


def engine_availability() -> Dict[str, Optional[str]]:
    """Every registered name → why it is unusable (``None`` = usable).

    The diagnostics surface: the CLI and the HTTP API render this so
    an operator can see *why* ``cuda`` is missing from the usable set.
    """
    return {
        name: _unavailable_reason(name)
        for name in sorted(_FACTORIES)
    }


def get_engine(engine: Union[str, Engine, None]) -> Engine:
    """Resolve a backend: a name, an :class:`Engine`, or ``None``.

    ``None`` resolves to :data:`DEFAULT_ENGINE`.  Instances pass
    through untouched, so callers can inject ad-hoc backends without
    registering them.  A registered name whose probe fails raises the
    probe's reason — actionable, unlike "unknown engine".
    """
    if engine is None:
        engine = DEFAULT_ENGINE
    if isinstance(engine, Engine):
        return engine
    try:
        factory = _FACTORIES[engine]
    except (KeyError, TypeError):
        raise EngineError(
            f"unknown engine {engine!r}; "
            f"available: {', '.join(available_engines())}"
        ) from None
    reason = _unavailable_reason(engine)
    if reason is not None:
        raise EngineError(
            f"engine {engine!r} is unavailable: {reason}"
        )
    instance = _INSTANCES.get(engine)
    if instance is None:
        instance = factory()
        _INSTANCES[engine] = instance
    return instance


def engine_name(engine: Union[str, Engine, None]) -> str:
    """The registry name a backend selector resolves to."""
    if engine is None:
        return DEFAULT_ENGINE
    if isinstance(engine, Engine):
        return engine.name or type(engine).__name__
    return engine
