"""Backend registry: name → engine factory.

The rest of the system selects a backend by name (``engine="bitpack"``
in the library API, ``--engine bitpack`` on the CLI); the registry maps
those names to lazily-constructed singleton :class:`Engine` instances.
Third-party backends register themselves with :func:`register_engine`
— the only requirement is the :class:`~repro.engine.base.Engine`
interface and exception contract.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple, Union

from repro.engine.base import Engine, EngineError

#: The backend used when callers do not ask for one explicitly.
DEFAULT_ENGINE = "reference"

_FACTORIES: Dict[str, Callable[[], Engine]] = {}
_INSTANCES: Dict[str, Engine] = {}


def register_engine(
    name: str,
    factory: Callable[[], Engine],
    overwrite: bool = False,
) -> None:
    """Register a backend factory under ``name``.

    ``overwrite=False`` protects the built-in backends from accidental
    shadowing; pass ``True`` to deliberately replace one.
    """
    if not name:
        raise EngineError("engine name must be non-empty")
    if name in _FACTORIES and not overwrite:
        raise EngineError(f"engine {name!r} is already registered")
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def available_engines() -> Tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_FACTORIES))


def get_engine(engine: Union[str, Engine, None]) -> Engine:
    """Resolve a backend: a name, an :class:`Engine`, or ``None``.

    ``None`` resolves to :data:`DEFAULT_ENGINE`.  Instances pass
    through untouched, so callers can inject ad-hoc backends without
    registering them.
    """
    if engine is None:
        engine = DEFAULT_ENGINE
    if isinstance(engine, Engine):
        return engine
    try:
        factory = _FACTORIES[engine]
    except (KeyError, TypeError):
        raise EngineError(
            f"unknown engine {engine!r}; "
            f"available: {', '.join(available_engines())}"
        ) from None
    instance = _INSTANCES.get(engine)
    if instance is None:
        instance = factory()
        _INSTANCES[engine] = instance
    return instance


def engine_name(engine: Union[str, Engine, None]) -> str:
    """The registry name a backend selector resolves to."""
    if engine is None:
        return DEFAULT_ENGINE
    if isinstance(engine, Engine):
        return engine.name or type(engine).__name__
    return engine
