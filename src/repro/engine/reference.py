"""The reference backend — the original ``Gf2Poly`` path as an Engine.

This is a thin adapter over
:func:`repro.rewrite.backward.backward_rewrite`: monomials stay
``frozenset``\\ s of signal names, so "decoding" is free.  The backend
exists so that the reference implementation participates in the same
registry/driver machinery as optimised backends and keeps serving as
the differential-testing oracle.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Tuple

from repro.engine.base import ConeExpression, Engine
from repro.gf2.monomial import Monomial
from repro.gf2.polynomial import Gf2Poly
from repro.netlist.netlist import Netlist
from repro.rewrite.backward import RewriteStats, backward_rewrite


class ReferenceExpression(ConeExpression):
    """A :class:`Gf2Poly` wearing the :class:`ConeExpression` hat."""

    __slots__ = ("poly",)

    def __init__(self, poly: Gf2Poly):
        self.poly = poly

    def decode(self) -> Gf2Poly:
        return self.poly

    def term_count(self) -> int:
        return self.poly.term_count()

    def contains_products(self, products: Iterable[Monomial]) -> bool:
        return self.poly.contains_all(products)

    def equals_poly(self, poly: Gf2Poly) -> bool:
        return self.poly == poly


class ReferenceEngine(Engine):
    """Set-of-frozensets backward rewriting (the oracle)."""

    name = "reference"

    def rewrite_cone(
        self,
        netlist: Netlist,
        output: str,
        trace: bool = False,
        term_limit: Optional[int] = None,
        compile_cache: Optional[Any] = None,
    ) -> Tuple[ReferenceExpression, RewriteStats]:
        del compile_cache  # nothing to compile on this backend
        poly, stats = backward_rewrite(
            netlist,
            output,
            trace=trace,
            term_limit=term_limit,
            engine="reference",
        )
        return ReferenceExpression(poly), stats
