"""repro.engine — pluggable backward-rewriting execution backends.

Why a subsystem
---------------
The paper's scalability argument (Yu/Holcomb/Ciesielski, DATE 2017) is
that per-output-bit extraction is embarrassingly parallel and cheap per
step; their C++ runs 16 threads up to GF(2^571).  The reference python
path represents a monomial as a ``frozenset`` of signal-name strings,
so every substitution pays string hashing and a container allocation
per monomial — the dominant cost at the field sizes the benchmarks
target.  This package separates *what* Algorithm 1 computes from *how
its monomials are represented*, behind a backend registry.

Packing scheme
--------------
The ``bitpack`` backend interns every signal of one output cone to a
bit index (:class:`~repro.engine.interning.SignalInterner`).  Because
netlist variables are idempotent (``x² = x``), a monomial needs no
exponents: it is exactly the *set* of its signals, packed as one
python ``int`` with bit ``k`` set iff signal ``k`` occurs.  The
constant monomial ``1`` is the mask ``0``.  A polynomial is a
``set[int]`` and mod-2 cancellation stays structural: adding a monomial
toggles set membership.  One Algorithm-1 substitution step is then::

    stripped = mono & ~var_bit      # divide by the gate-output variable
    product  = stripped | model     # multiply by a model monomial
    toggle(current, product)        # cancel pairs mod 2

Gate models come from :func:`repro.rewrite.gate_models.gate_model`
(already cached per gate type/inputs) and are packed into mask tuples
when the gate is first rewritten.  Interning is first-seen order during
the backward walk, so a signal's bit is allocated shortly before its
driver gate eliminates it, keeping live masks compact.

Decode boundary
---------------
Packed expressions stay packed for as long as the caller's question can
be answered natively: the Algorithm-2 out-field membership test and the
verifier's spec-equality test run directly on the ``set[int]``
(:meth:`~repro.engine.bitpack.PackedExpression.contains_products`,
:meth:`~repro.engine.bitpack.PackedExpression.equals_poly`).  Only at
the public API boundary — :class:`~repro.rewrite.parallel.ExtractionRun`
expressions, traces, reports — does
:meth:`~repro.engine.bitpack.PackedExpression.decode` rebuild
:class:`~repro.gf2.polynomial.Gf2Poly` values, a single linear pass
that is negligible next to rewriting.

Backends
--------
``reference``
    the original ``Gf2Poly`` path (the differential-testing oracle);
``bitpack``
    interned bitmask monomials, typically ≥5× faster (see
    ``benchmarks/bench_engines.py`` / ``BENCH_engines.json``);
``aig``
    cut-based rewriting over the hash-consed And-Inverter Graph
    (:mod:`repro.aig`): the netlist is strashed into complement-edge
    AND/XOR nodes, flattened node-by-node into packed PI-space
    polynomials, and the remainder is substituted cut-by-cut from
    exact k-feasible-cut ANFs — the backend of choice for
    technology-mapped / NAND-lowered netlists, where gate-granular
    rewriting suffers intermediate-expression blowup (see
    ``benchmarks/bench_aig.py`` / ``BENCH_aig.json``);
``vector``
    the same compiled program as ``aig``, with the substitution loop
    vectorized in numpy: a polynomial is a ``uint64`` bit-matrix (one
    row per monomial, interned signals packed 64 per word), one
    substitution is a broadcast OR against the model matrix, and
    GF(2) cancellation is a lexsort + run-parity pass — or, for steps
    touching few rows, an incremental merge into the sorted remainder
    (see ``benchmarks/bench_vector.py`` / ``BENCH_vector.json``).
    numpy is optional — the backend registers only when it imports.
    The vector engine also implements the **fused multi-output
    sweep** (:meth:`~repro.engine.base.Engine.rewrite_cones` /
    ``fused=True`` on the extraction drivers): all m output cones are
    rewritten in one output-tagged bit-matrix, amortizing the DAG
    walk, model packing and cancellation sorts m-fold while the sort
    keys keep cancellation strictly per-cone — bit-identical to
    per-bit extraction, ≥3x faster on the NAND-mapped m=32 sweep
    (``benchmarks/bench_fused.py`` / ``BENCH_fused.json``).  Every
    other backend serves ``rewrite_cones`` through its per-bit loop,
    so ``fused=True`` degrades cleanly without numpy.
    The fused sweep is additionally **memory-budgeted**: under
    ``REPRO_SWEEP_MAX_BYTES`` / ``max_bytes=`` / ``--max-ram`` the
    live matrix spills to on-disk tag-range shards and rounds stream
    out of core (``benchmarks/bench_outofcore.py`` /
    ``BENCH_outofcore.json``);
``cuda``
    the fused vector sweep dispatched through cupy on a GPU
    (:mod:`repro.engine.cuda`): same compiled program, same kernels,
    device→host transfer only at the decode boundary.  Registered
    unconditionally but availability-probed — without cupy (or a
    visible CUDA device) the engine is absent from
    :func:`available_engines` and resolving it fails with the
    recorded reason.

Compiling backends (bitpack, aig, vector) additionally persist their
one-time per-netlist compile through the ``compile_cache=`` hook
(:class:`~repro.engine.base.CompilingEngine`): programs are stored in
the service result cache keyed by (fingerprint, compile key, compile
schema), validated against an exact-netlist token on load, and
re-stored when rewriting grows them (lazily built cut models), so a
batch campaign compiles each distinct structure once ever.

Every backend produces bit-identical *results* — canonical
expressions, P(x), member bits — and fails structurally broken
netlists with the same exception types; that contract is enforced by
``tests/test_engine_differential.py``.  Statistics and resource
behaviour are backend-specific: ``term_limit`` bounds each engine's
*own* intermediate representation, so a run that memory-outs on the
reference engine may fit under ``bitpack`` (whose flattening keeps
intermediates smaller).  New backends (e.g. AIG/cut-based rewriting)
register via :func:`register_engine`.
"""

from repro.engine.aig import AigEngine
from repro.engine.base import (
    CompilingEngine,
    ConeExpression,
    Engine,
    EngineError,
    netlist_token,
)
from repro.engine.bitpack import BitpackEngine, PackedExpression
from repro.engine.interning import SignalInterner
from repro.engine.reference import ReferenceEngine, ReferenceExpression
from repro.engine.cuda import CudaEngine
from repro.engine.registry import (
    DEFAULT_ENGINE,
    FALLBACK_LADDER,
    available_engines,
    engine_availability,
    engine_name,
    fallback_chain,
    get_engine,
    register_engine,
    registered_engines,
)
from repro.engine.vector import VectorEngine

register_engine(ReferenceEngine.name, ReferenceEngine)
register_engine(BitpackEngine.name, BitpackEngine)
register_engine(AigEngine.name, AigEngine)
# numpy/cupy are optional: these backends register unconditionally
# with an availability probe, so ``available_engines()`` (and thus the
# differential suite and the benchmarks) skips them cleanly when the
# dependency is missing, while resolving them by name still fails
# with the probe's recorded reason instead of "unknown engine".
register_engine(
    VectorEngine.name, VectorEngine, probe=VectorEngine.availability
)
register_engine(
    CudaEngine.name, CudaEngine, probe=CudaEngine.availability
)

__all__ = [
    "CompilingEngine",
    "ConeExpression",
    "Engine",
    "EngineError",
    "netlist_token",
    "AigEngine",
    "BitpackEngine",
    "PackedExpression",
    "SignalInterner",
    "ReferenceEngine",
    "ReferenceExpression",
    "VectorEngine",
    "CudaEngine",
    "DEFAULT_ENGINE",
    "FALLBACK_LADDER",
    "available_engines",
    "engine_availability",
    "engine_name",
    "fallback_chain",
    "get_engine",
    "register_engine",
    "registered_engines",
]
