"""GPU backward rewriting — the fused sweep dispatched through cupy.

The fused sweep in :mod:`repro.engine.vector` is a handful of array
kernels — broadcast-OR substitution, radix lexsort, run-parity
cancellation — written against the surface numpy and cupy share and
reached through an :class:`repro.engine.xp.ArrayBackend`.  This
engine is therefore *thin*: it subclasses :class:`VectorEngine`,
keeps the compiled program (and so shares compiled-program cache
entries with the ``aig`` and ``vector`` engines — ``compile_key``
is inherited), and swaps the sweep's backend for cupy.  The whole
substitution loop runs on the device; rows come back to the host
exactly once, at the decode boundary.

Two deliberate host fallbacks:

* **per-bit mode** (``rewrite_cone``) stays on the host numpy path —
  single-cone matrices are small and per-cone kernel launches would
  be all overhead; fused mode is where the device pays;
* **byte budgets** (``max_bytes=`` / ``REPRO_SWEEP_MAX_BYTES``)
  route the sweep to the host spill path: spilling is host-only by
  construction (memmaps, byte-string merge keys), and when *device*
  memory is the binding constraint the documented answer is to cap
  the budget and let the out-of-core tier take over.

Availability is gated in the registry exactly like vector's numpy
gate, but with a recorded *reason* — ``repro extract --engine cuda``
on a host without cupy (or without a visible CUDA device) fails with
that reason, not with "unknown engine".
"""

from __future__ import annotations

from typing import Optional

from repro.engine import xp as _xp
from repro.engine.base import EngineError
from repro.engine.vector import VectorEngine


class CudaEngine(VectorEngine):
    """The fused vector sweep with cupy as the array backend."""

    name = "cuda"

    @classmethod
    def availability(cls) -> Optional[str]:
        """Why the engine is unusable (``None`` when cupy + a device
        are present); the registry surfaces this verbatim."""
        return _xp.cuda_unavailable_reason()

    def _sweep_backend(self, budget: Optional[int]) -> "_xp.ArrayBackend":
        if budget is not None:
            # Spill fallback: a byte budget means the matrix may leave
            # RAM, and the spill tier is host-only.  Device memory
            # pressure is handled by capping the budget, not by
            # spilling device buffers.
            return _xp.numpy_backend()
        reason = _xp.cuda_unavailable_reason()
        if reason is not None:
            raise EngineError(
                f"engine 'cuda' is unavailable: {reason}"
            )
        return _xp.cupy_backend()
