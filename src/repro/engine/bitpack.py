"""Bit-packed backward rewriting — monomials as ``int`` bitmasks.

The hot loop of Algorithm 1 is "strip the gate-output variable from a
monomial, union in a model monomial, toggle the result mod 2".  With
the signals of one output cone interned to bit indices
(:mod:`repro.engine.interning`) those operations become single int
instructions::

    stripped = mono & ~var_bit          # strip the rewritten variable
    product  = stripped | model_mask    # monomial multiplication
    set.add/discard(product)            # mod-2 cancellation

A polynomial is a ``set[int]``; hashing an ``int`` is word-sized work
instead of the per-element string hashing of ``frozenset[str]``, and no
container is allocated per monomial.

Compilation (once per netlist, cached weakly)
---------------------------------------------
Primary inputs receive the *global* low bit indices ``0..P-1``, so a
fully-rewritten monomial — a product of primary inputs — is a small
integer whose packing is shared by every cone.  A forward pass then
**flattens** cheap fanout-free regions: a gate whose inputs are all
flat (primary inputs or previously flattened nets) and whose packed
polynomial stays below a size bound is replaced by that polynomial —
exact mod-2 algebra, so XOR trees fold into C-level symmetric
differences of mask sets.  Flattened nets never become rewriting
variables; the remaining **opaque** gates get their models precompiled
as ``(pi_mask, opaque_names)`` monomial pairs, i.e. the flat part is
already a bitmask and only the few opaque signals need per-cone
interning.

Rewriting (per output bit)
--------------------------
Opaque signals are interned per cone *above* the global input region —
cone-local indices keep masks narrow (a global numbering would turn
every int operation into a kilobyte memcpy).  Two structures remove
the reference path's per-gate linear scans:

* a **worklist** (max-heap of topological positions) visits only
  opaque gates whose output variable is *live* in the expression — the
  reference engine walks the whole structural cone, and extracting
  that cone already costs a full pass over the netlist per output bit;
* a lazy **occurrence index** (``variable bit → monomials that gained
  it``) yields each gate's affected monomials via one C-level set
  intersection — the reference engine rescans every monomial of the
  expression for every gate.

The engine produces bit-identical *results* (canonical expressions,
P(x), member bits, failure modes) to the reference backend — enforced
by the differential test suite — but takes algebraically equivalent
shortcuts, so per-step statistics (iterations, peak terms, eliminated
monomials, cone gate counts) legitimately differ: flattened regions
are substituted in one step, and ``term_limit`` bounds this engine's
own intermediate representation rather than the reference engine's.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.engine.base import CompilingEngine, ConeExpression, cone_span
from repro.engine.interning import SignalInterner
from repro.gf2.monomial import Monomial
from repro.gf2.polynomial import Gf2Poly
from repro.netlist.netlist import Netlist
from repro.rewrite.backward import (
    BackwardRewriteError,
    RewriteStats,
    TermLimitExceeded,
    TraceStep,
)
from repro.rewrite.gate_models import gate_model

#: Largest packed polynomial a fanout-free net may flatten to.
_FLAT_BOUND = 48
#: Largest packed polynomial a *shared* (fanout > 1) net may flatten
#: to — bigger ones would be duplicated into every consumer.
_FLAT_SHARED_BOUND = 4
#: Abort threshold for expanding flat inputs inside one model monomial.
_EXPAND_BOUND = 2048


class PackedExpression(ConeExpression):
    """A canonical expression as a set of interned bitmasks."""

    __slots__ = ("masks", "interner")

    def __init__(self, masks: Set[int], interner: SignalInterner):
        self.masks = masks
        self.interner = interner

    def decode(self) -> Gf2Poly:
        unpack = self.interner.unpack
        return Gf2Poly.from_monomials({unpack(mask) for mask in self.masks})

    def term_count(self) -> int:
        return len(self.masks)

    def contains_products(self, products: Iterable[Monomial]) -> bool:
        """Out-field membership directly on the packed set.

        A product mentioning a signal this cone never saw cannot occur
        in the expression, so an un-packable monomial is simply absent.
        """
        try_pack = self.interner.try_pack
        masks = self.masks
        for mono in products:
            mask = try_pack(mono)
            if mask is None or mask not in masks:
                return False
        return True

    def equals_poly(self, poly: Gf2Poly) -> bool:
        """Equality against a reference polynomial, without decoding."""
        monomials = poly.monomials
        if len(self.masks) != len(monomials):
            return False
        try_pack = self.interner.try_pack
        masks = self.masks
        for mono in monomials:
            mask = try_pack(mono)
            if mask is None or mask not in masks:
                return False
        return True


def _flat_product(
    polys: List[Set[int]], bound: int
) -> Optional[Set[int]]:
    """Mod-2 product of packed polynomials; ``None`` past ``bound``."""
    if not polys:
        return {0}
    acc = polys[0]
    for poly in polys[1:]:
        counts: Dict[int, int] = {}
        for lhs in acc:
            for rhs in poly:
                mask = lhs | rhs
                counts[mask] = counts.get(mask, 0) ^ 1
        acc = {mask for mask, parity in counts.items() if parity}
        if len(acc) > bound:
            return None
    return acc


def _flat_eval(
    model, flats: Dict[str, Set[int]], bound: int
) -> Optional[Set[int]]:
    """Packed polynomial of a gate whose inputs are all flat.

    ``None`` when a bound is exceeded — or when an input is not flat
    (the ``KeyError`` doubles as the eligibility check).
    """
    total: Set[int] = set()
    try:
        for mono in model:
            if len(mono) == 1:
                product = flats[next(iter(mono))]
            else:
                product = _flat_product(
                    [flats[name] for name in mono], bound
                )
                if product is None:
                    return None
            total = total.symmetric_difference(product)
            if len(total) > bound:
                return None
    except KeyError:
        return None
    return total


class _CompiledNetlist:
    """One netlist, flattened and model-compiled for mask rewriting."""

    __slots__ = (
        "pi_index",
        "pi_names",
        "pi_ones",
        "models",
        "flats",
        "n_gates",
    )

    def __init__(self, netlist: Netlist):
        order = netlist.topological_order()
        outputs = set(netlist.outputs)
        fanout: Dict[str, int] = {}
        for gate in order:
            for name in gate.inputs:
                fanout[name] = fanout.get(name, 0) + 1

        self.pi_names: List[str] = list(netlist.inputs)
        self.pi_index: Dict[str, int] = {
            name: index for index, name in enumerate(self.pi_names)
        }
        pi_count = len(self.pi_names)
        self.pi_ones = (1 << pi_count) - 1
        self.n_gates = len(order)

        name_models = [gate_model(gate) for gate in order]
        demoted: Set[str] = set()
        while True:
            flats = self._flatten(
                order, name_models, outputs, fanout, demoted
            )
            models, offender = self._compile_models(
                order, name_models, flats
            )
            if offender is None:
                break
            demoted.add(offender)
        #: Per topological position: the opaque gate's model as
        #: ``(pi_mask, opaque_names)`` monomials, or ``None`` for a
        #: flattened gate (its output never becomes a variable).
        self.models = models
        #: Packed PI-space polynomial of every flat net (primary
        #: inputs included) — the ready answer when a flattened net is
        #: itself rewritten.
        self.flats = flats

    def _flatten(
        self,
        order,
        name_models,
        outputs: Set[str],
        fanout: Dict[str, int],
        demoted: Set[str],
    ) -> Dict[str, Set[int]]:
        """Forward pass: pack cheap fanout-free regions into PI space."""
        flats: Dict[str, Set[int]] = {
            name: {1 << index} for name, index in self.pi_index.items()
        }
        for gate, model in zip(order, name_models):
            net = gate.output
            if net in outputs or net in demoted:
                continue
            poly = _flat_eval(model, flats, _FLAT_BOUND)
            if poly is None:
                continue
            if fanout.get(net, 0) != 1 and len(poly) > _FLAT_SHARED_BOUND:
                continue
            flats[net] = poly
        return flats

    def _compile_models(self, order, name_models, flats: Dict[str, Set[int]]):
        """Expand flat inputs inside every opaque gate's model.

        Returns ``(models, None)`` on success, or ``(None, name)``
        naming a flat net to demote when an expansion explodes.
        """
        models: List[Optional[Tuple[Tuple[int, Tuple[str, ...]], ...]]] = []
        for gate, name_model in zip(order, name_models):
            if gate.output in flats:
                models.append(None)
                continue
            counts: Dict[Tuple[int, Tuple[str, ...]], int] = {}
            for mono in name_model:
                flat_polys: List[Set[int]] = []
                opaque: List[str] = []
                for name in mono:
                    poly = flats.get(name)
                    if poly is None:
                        opaque.append(name)
                    else:
                        flat_polys.append(poly)
                product = _flat_product(flat_polys, _EXPAND_BOUND)
                if product is None:
                    biggest = max(flat_polys, key=len)
                    for name in mono:
                        if flats.get(name) is biggest:
                            return None, name
                    return None, next(  # pragma: no cover - defensive
                        name for name in mono if name in flats
                    )
                key_names = tuple(sorted(opaque))
                for mask in product:
                    key = (mask, key_names)
                    counts[key] = counts.get(key, 0) ^ 1
            models.append(
                tuple(key for key, parity in counts.items() if parity)
            )
        return models, None


class BitpackEngine(CompilingEngine):
    """Backward rewriting over interned bitmask monomials."""

    name = "bitpack"
    #: Bump on any change to :class:`_CompiledNetlist`'s layout.
    compile_schema = 1

    def _compile(self, netlist: Netlist) -> _CompiledNetlist:
        return _CompiledNetlist(netlist)

    def rewrite_cone(
        self,
        netlist: Netlist,
        output: str,
        trace: bool = False,
        term_limit: Optional[int] = None,
        compile_cache: Optional[Any] = None,
    ) -> Tuple[PackedExpression, RewriteStats]:
        with cone_span(self, output) as span:
            expression, stats = self._rewrite_cone_impl(
                netlist, output, trace, term_limit, compile_cache
            )
            span.annotate(
                iterations=stats.iterations, peak_terms=stats.peak_terms
            )
            stats.runtime_s = span.elapsed()
            return expression, stats

    def _rewrite_cone_impl(
        self,
        netlist: Netlist,
        output: str,
        trace: bool,
        term_limit: Optional[int],
        compile_cache: Optional[Any],
    ) -> Tuple[PackedExpression, RewriteStats]:
        stats = RewriteStats(output=output)

        compiled = self._compiled_for(netlist, compile_cache)
        models = compiled.models
        position_of = netlist.topological_positions()
        position_get = position_of.get

        flat_poly = compiled.flats.get(output)
        if flat_poly is not None:
            # The requested net was flattened (a primary input or a
            # folded fanout-free region): its packed PI-space
            # polynomial is already the canonical answer.
            interner = SignalInterner.adopt(
                dict(compiled.pi_index), list(compiled.pi_names)
            )
            masks = set(flat_poly)
            stats.final_terms = len(masks)
            stats.peak_terms = max(1, len(masks))
            if term_limit is not None and stats.peak_terms > term_limit:
                raise TermLimitExceeded(
                    output, stats.peak_terms, term_limit
                )
            return PackedExpression(masks, interner), stats

        # Cone-local interning tables, pre-seeded with the global
        # primary-input region; opaque signals intern above it.  The
        # tables are raw dict/list locals for the hot loop and become a
        # SignalInterner for the result.
        sig_index: Dict[str, int] = dict(compiled.pi_index)
        sig_names: List[str] = list(compiled.pi_names)
        index_get = sig_index.get

        # occurs[i]: monomials that contain live tracked variable i.
        # The index is *lazy*: entries are added when a monomial gains
        # bit i but never removed when one is cancelled — at pop time a
        # C-level set intersection against `current` filters the stale
        # entries, which is far cheaper than eager maintenance on every
        # cancellation.  pending: max-heap (negated topological
        # positions) of tracked variables awaiting substitution; each
        # variable is pushed exactly once, when interned, and positions
        # pop in strictly decreasing order (a gate model only mentions
        # earlier signals), so no variable re-occurs after its
        # substitution.
        occurs: Dict[int, Set[int]] = {}
        pending: List[Tuple[int, int]] = []
        tracked_mask = 0

        # F0 = z_i : the single-variable monomial of the output bit.
        out_index = index_get(output)
        if out_index is None:
            out_index = len(sig_names)
            sig_index[output] = out_index
            sig_names.append(output)
        out_mask = 1 << out_index
        current: Set[int] = {out_mask}
        out_position = position_get(output)
        if out_position is not None:
            tracked_mask = out_mask
            occurs[out_index] = {out_mask}
            heappush(pending, (-out_position, out_index))

        iterations = 0
        touched = 0
        eliminated_total = 0
        peak_terms = 1

        current_add = current.add
        current_remove = current.remove
        current_intersection = current.intersection
        occurs_pop = occurs.pop

        while pending:
            neg_position, var_index = heappop(pending)
            touched += 1
            affected = current_intersection(occurs_pop(var_index))
            if not affected:
                # The variable occurred and then cancelled away before
                # its driver was reached (Algorithm 1 line 4 skip).
                continue
            keep = ~(1 << var_index)

            # Pack the gate model: the flat part is precompiled, only
            # opaque signals need the cone-local index (interning on
            # first sight; newly tracked variables enter the worklist).
            model: List[int] = []
            for pi_mask, opaque_names in models[-neg_position]:
                mask = pi_mask
                for name in opaque_names:
                    index = index_get(name)
                    if index is None:
                        index = len(sig_names)
                        sig_index[name] = index
                        sig_names.append(name)
                        gate_position = position_get(name)
                        if gate_position is not None:
                            tracked_mask |= 1 << index
                            occurs[index] = set()
                            heappush(pending, (-gate_position, index))
                    mask |= 1 << index
                model.append(mask)

            # Substitute.  Products never contain the variable being
            # eliminated while every affected monomial does, so removal
            # and product toggling cannot collide and run in one pass.
            eliminated = 0
            for mono in affected:
                current_remove(mono)
                stripped = mono & keep
                for replacement in model:
                    product = stripped | replacement
                    if product in current:
                        current_remove(product)
                        eliminated += 2  # both copies cancelled mod 2
                    else:
                        current_add(product)
                        rest = product & tracked_mask
                        while rest:
                            low = rest & -rest
                            occurs[low.bit_length() - 1].add(product)
                            rest ^= low
            iterations += 1
            eliminated_total += eliminated
            if len(current) > peak_terms:
                peak_terms = len(current)
                if term_limit is not None and peak_terms > term_limit:
                    stats.iterations = iterations
                    stats.cone_gates = touched
                    stats.eliminated_monomials = eliminated_total
                    stats.peak_terms = peak_terms
                    raise TermLimitExceeded(output, peak_terms, term_limit)
            if trace:
                interner = SignalInterner(list(sig_names))
                decoded = Gf2Poly.from_monomials(
                    {interner.unpack(mono) for mono in current}
                )
                gate = netlist.topological_order()[-neg_position]
                stats.trace.append(
                    TraceStep(
                        gate=str(gate),
                        expression=str(decoded),
                        eliminated=f"{eliminated} monomials cancelled",
                    )
                )

        interner = SignalInterner.adopt(sig_index, sig_names)

        residue = 0
        for mono in current:
            residue |= mono
        residue &= ~compiled.pi_ones
        if residue:
            # Inputs declared after compilation still count as inputs.
            declared_inputs = set(netlist.inputs)
            leftovers = [
                name
                for name in interner.names_of(residue)
                if name not in declared_inputs
            ]
            if leftovers:
                raise BackwardRewriteError(
                    f"rewriting {output!r} left non-input variables "
                    f"{sorted(leftovers)[:5]} — netlist is not a complete "
                    "combinational cone"
                )

        stats.iterations = iterations
        stats.cone_gates = touched
        stats.eliminated_monomials = eliminated_total
        stats.peak_terms = peak_terms
        stats.final_terms = len(current)
        return PackedExpression(current, interner), stats
