"""Vectorized backward rewriting — polynomials as numpy bit-matrices.

The pure-python backends spend the substitution loop hashing one
python ``int`` at a time; on wide cones the interpreter dispatch, not
the algebra, is the cost.  This backend keeps the *same* compiled
program as the ``aig`` engine (strash → flattening → cut-ANF models,
:class:`repro.engine.aig._CompiledAig` — so the two backends also
share compiled-program cache entries) but runs Algorithm 1's loop in
numpy:

* a polynomial is a ``uint64`` matrix of shape ``(monomials, words)``
  — row ``i`` is monomial ``i``'s bitmask with interned signals packed
  64 per word (the same bit indices the
  :class:`~repro.engine.interning.SignalInterner` assigns, so decode
  and the packed membership tests are unchanged);
* one substitution step is a broadcast: the affected rows (one
  vectorized bit-test — the role the bitpack engine's occurrence
  index plays — selects them) are stripped of the variable bit and
  OR-ed against the whole model matrix in a single
  ``(affected, 1, words) | (1, models, words)`` operation;
* GF(2) cancellation is a lexsort: the surviving rows plus the fresh
  products are sorted, equal rows grouped, and groups of even
  multiplicity dropped — ``set[int]`` churn becomes two C passes.

Results are bit-identical to the reference backend (the differential
suite drives all three packed engines across the generator zoo);
statistics and the memory-out point are backend-specific, as the
engine contract allows.

numpy is an *optional* dependency: :meth:`VectorEngine.available`
reports whether it imported, the registry only lists the backend when
it did, and everything else in the package works without it.
"""

from __future__ import annotations

import time
from heapq import heappop, heappush
from typing import Any, Dict, List, Optional, Tuple

from repro.engine.aig import AigEngine
from repro.engine.base import EngineError
from repro.engine.bitpack import PackedExpression
from repro.engine.interning import SignalInterner
from repro.gf2.polynomial import Gf2Poly
from repro.netlist.netlist import Netlist
from repro.rewrite.backward import (
    RewriteStats,
    TermLimitExceeded,
    TraceStep,
)

try:  # pragma: no cover - exercised via the no-numpy subprocess test
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

_WORD_BITS = 64
_WORD_MASK = (1 << _WORD_BITS) - 1
#: Largest product matrix materialized at once (rows).  Substitution
#: cancels chunk by chunk — exact, since run-parity cancellation is
#: associative — so the transient |affected|x|model| broadcast never
#: outgrows this bound and ``term_limit`` stays a real memory bound.
_CHUNK_ROWS = 1 << 16


def _mask_rows(masks: List[int], words: int) -> "Any":
    """Python int bitmasks → a ``(len(masks), words)`` uint64 matrix."""
    rows = _np.zeros((len(masks), words), dtype=_np.uint64)
    for row, mask in enumerate(masks):
        word = 0
        while mask:
            rows[row, word] = mask & _WORD_MASK
            mask >>= _WORD_BITS
            word += 1
    return rows


def _rows_to_masks(matrix: "Any") -> "Any":
    """Matrix rows → python int bitmasks (the decode boundary)."""
    masks = set()
    words = matrix.shape[1]
    for row in matrix.tolist():  # one C-level conversion, then ints
        mask = 0
        for word in range(words - 1, -1, -1):
            mask = (mask << _WORD_BITS) | row[word]
        masks.add(mask)
    return masks


def _cancel_mod2(rows: "Any") -> "Any":
    """Drop rows of even multiplicity (the GF(2) cancellation).

    Lexsort groups equal rows; run lengths come from the boundary
    mask; odd-length runs keep one representative.  All C passes.
    """
    if rows.shape[0] < 2:
        return rows
    order = _np.lexsort(rows.T)
    ordered = rows[order]
    boundary = _np.empty(ordered.shape[0], dtype=bool)
    boundary[0] = True
    _np.any(ordered[1:] != ordered[:-1], axis=1, out=boundary[1:])
    starts = _np.flatnonzero(boundary)
    lengths = _np.diff(_np.append(starts, ordered.shape[0]))
    return ordered[starts[(lengths & 1).astype(bool)]]


class VectorEngine(AigEngine):
    """Backward rewriting over numpy uint64 bit-matrix polynomials.

    Subclasses :class:`~repro.engine.aig.AigEngine` for everything
    *around* the loop — the compiled program (and therefore the
    ``aig`` compiled-cache key), the flat fast path, the residue
    check, trace formatting — and replaces the per-monomial python
    loop with the vectorized substitution described in the module
    docstring.
    """

    name = "vector"

    @staticmethod
    def available() -> bool:
        """Whether numpy imported; the registry skips us otherwise."""
        return _np is not None

    def rewrite_cone(
        self,
        netlist: Netlist,
        output: str,
        trace: bool = False,
        term_limit: Optional[int] = None,
        compile_cache: Optional[Any] = None,
    ) -> Tuple[PackedExpression, RewriteStats]:
        if _np is None:
            raise EngineError(
                "the vector engine needs numpy, which is not installed; "
                "use engine='aig' or 'bitpack' instead"
            )
        stats = RewriteStats(output=output)
        started = time.perf_counter()

        compiled = self._compiled_for(netlist, compile_cache)
        literal = compiled.net_literal.get(output)
        if literal is None:
            return super().rewrite_cone(
                netlist, output, trace=trace, term_limit=term_limit
            )  # raises the shared dangling-variable failure
        node = literal >> 1
        complemented = literal & 1

        flat = compiled.flats.get(node)
        if flat is not None:
            # Flat fast path — already a packed PI-space answer; no
            # matrix needed (identical to the aig engine's path).
            return super().rewrite_cone(
                netlist,
                output,
                trace=trace,
                term_limit=term_limit,
                compile_cache=compile_cache,
            )

        # Cone-local interning: shared leaf region + one bit per
        # opaque node, exactly as the aig engine assigns them.
        sig_index: Dict[str, int] = dict(compiled.leaf_index)
        sig_names: List[str] = list(compiled.leaf_names)
        index_of_node: Dict[int, int] = {}
        pending: List[Tuple[int, int]] = []

        def intern_node(opaque: int) -> int:
            index = index_of_node.get(opaque)
            if index is None:
                index = len(sig_names)
                index_of_node[opaque] = index
                sig_index[f"__aig{opaque}"] = index
                sig_names.append(f"__aig{opaque}")
            return index

        out_index = intern_node(node)
        heappush(pending, (-node, out_index))

        words = (len(sig_names) // _WORD_BITS) + 2  # headroom for interning
        initial = [1 << out_index]
        if complemented:
            initial.append(0)
        matrix = _mask_rows(initial, words)

        iterations = 0
        touched = 0
        eliminated_total = 0
        peak_terms = matrix.shape[0]

        model_of = compiled.model_of
        leaf_bits = compiled.leaf_bits

        while pending:
            neg_node, var_index = heappop(pending)
            touched += 1

            # Pack the cut model first: interning may allocate new bit
            # indices (and grow the matrix width) before the bit-test.
            model_masks: List[int] = []
            for pi_mask, opaque_nodes in model_of(-neg_node):
                mask = pi_mask
                for opaque in opaque_nodes:
                    leaf_bit = leaf_bits.get(opaque)
                    if leaf_bit is not None:
                        mask |= 1 << leaf_bit
                        continue
                    index = index_of_node.get(opaque)
                    if index is None:
                        index = intern_node(opaque)
                        heappush(pending, (-opaque, index))
                    mask |= 1 << index
                model_masks.append(mask)
            needed = (len(sig_names) + _WORD_BITS - 1) // _WORD_BITS
            if needed > words:
                grown = needed + 1
                matrix = _np.hstack(
                    [
                        matrix,
                        _np.zeros(
                            (matrix.shape[0], grown - words),
                            dtype=_np.uint64,
                        ),
                    ]
                )
                words = grown

            # The vectorized occurrence test: one bit probe per row.
            word, bit = divmod(var_index, _WORD_BITS)
            selector = (
                (matrix[:, word] >> _np.uint64(bit)) & _np.uint64(1)
            ).astype(bool)
            if not selector.any():
                # Variable cancelled away before its node was reached
                # (Algorithm 1 line 4 skip).
                continue

            affected = matrix[selector]  # boolean indexing copies
            current = matrix[~selector]
            affected[:, word] &= _np.uint64(_WORD_MASK ^ (1 << bit))
            model_rows = _mask_rows(model_masks, words)

            produced = int(current.shape[0])
            chunk = max(1, _CHUNK_ROWS // max(1, model_rows.shape[0]))
            for start in range(0, affected.shape[0], chunk):
                part = affected[start : start + chunk]
                products = (
                    part[:, None, :] | model_rows[None, :, :]
                ).reshape(-1, words)
                produced += int(products.shape[0])
                current = _cancel_mod2(
                    _np.concatenate([current, products])
                )
                if current.shape[0] > peak_terms:
                    peak_terms = int(current.shape[0])
                    if term_limit is not None and peak_terms > term_limit:
                        stats.iterations = iterations
                        stats.cone_gates = touched
                        stats.eliminated_monomials = eliminated_total
                        stats.peak_terms = peak_terms
                        raise TermLimitExceeded(
                            output, peak_terms, term_limit
                        )
            matrix = current
            step_eliminated = produced - int(matrix.shape[0])

            iterations += 1
            eliminated_total += step_eliminated
            if trace:
                interner = SignalInterner(list(sig_names))
                decoded = Gf2Poly.from_monomials(
                    {
                        interner.unpack(mono)
                        for mono in _rows_to_masks(matrix)
                    }
                )
                stats.trace.append(
                    TraceStep(
                        gate=self._describe_node(compiled, -neg_node),
                        expression=str(decoded),
                        eliminated=f"{step_eliminated} monomials cancelled",
                    )
                )

        masks = _rows_to_masks(matrix)
        self._check_residue(compiled, netlist, output, masks)
        interner = SignalInterner.adopt(sig_index, sig_names)

        stats.iterations = iterations
        stats.cone_gates = touched
        stats.eliminated_monomials = eliminated_total
        stats.peak_terms = peak_terms
        stats.final_terms = len(masks)
        stats.runtime_s = time.perf_counter() - started
        return PackedExpression(masks, interner), stats
