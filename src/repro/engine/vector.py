"""Vectorized backward rewriting — polynomials as numpy bit-matrices.

The pure-python backends spend the substitution loop hashing one
python ``int`` at a time; on wide cones the interpreter dispatch, not
the algebra, is the cost.  This backend keeps the *same* compiled
program as the ``aig`` engine (strash → flattening → cut-ANF models,
:class:`repro.engine.aig._CompiledAig` — so the two backends also
share compiled-program cache entries) but runs Algorithm 1's loop in
numpy:

* a polynomial is a ``uint64`` matrix of shape ``(monomials, words)``
  — row ``i`` is monomial ``i``'s bitmask with interned signals packed
  64 per word (the same bit indices the
  :class:`~repro.engine.interning.SignalInterner` assigns, so decode
  and the packed membership tests are unchanged);
* one substitution step is a broadcast: the affected rows (one
  vectorized bit-test — the role the bitpack engine's occurrence
  index plays — selects them) are stripped of the variable bit and
  OR-ed against the whole model matrix in a single
  ``(affected, 1, words) | (1, models, words)`` operation;
* GF(2) cancellation is a lexsort: the surviving rows plus the fresh
  products are sorted, equal rows grouped, and groups of even
  multiplicity dropped — ``set[int]`` churn becomes two C passes.
  Because a cancelled matrix comes out *sorted*, a step that produced
  only a few fresh rows skips the next full lexsort entirely: the
  fresh slice is cancelled on its own and merge-sorted into the
  sorted remainder (binary-search positions + one ``insert``), the
  incremental path below :data:`_MERGE_FRACTION`.

Fused multi-output mode
-----------------------
:meth:`VectorEngine.rewrite_cones` rewrites *all* requested output
cones in one matrix: every row carries an **output tag** in an extra
trailing word (the lexsort's primary key, so cancelled matrices come
out grouped by cone), and one bit-matrix holds every output's
polynomial at once.  The sweep runs in *rounds*: each round claims,
per row, the
highest pending (interned, non-leaf) variable present in that row,
substitutes every claimed group with one broadcast each, and cancels
the whole matrix once — the lexsort keys on (tag, monomial), so
cancellation stays strictly per-cone while the walk over the shared
gate DAG, the cut-model lookups and the sorts are amortized over all
m outputs.  Substituting per-row-highest variables first is exactly
the reverse-topological order Algorithm 1 prescribes, applied row by
row; intermediate *statistics* therefore differ from the per-bit
sweep (rounds replace per-gate iterations), but the final expressions
are bit-identical — cancellation is exact mod-2 algebra at every
step, and canonical forms are unique (Theorem 1).  The per-bit
entry point :meth:`rewrite_cone` is unchanged; callers opt in through
``fused=True`` on the extraction drivers.

Past the memory wall: the out-of-core sweep
-------------------------------------------
The paper's hard ceiling is memory-out, and in fused mode the whole
intermediate polynomial is exactly one matrix — so the matrix is the
unit that spills.  Give the sweep a byte budget
(``REPRO_SWEEP_MAX_BYTES`` / ``max_bytes=`` / ``--max-ram``) and,
between rounds, a matrix past half the budget is tiled into
**per-tag-range shards** on disk (:mod:`repro.engine.spill`).  The
tag word is the lexsort's *primary* key, so a contiguous tag range is
closed under cancellation: no row in one shard can ever cancel
against a row in another, and each shard is a self-contained sorted
matrix.  A spilled round then streams shard by shard — load one
shard, claim and substitute exactly as in core, cancel products into
a bounded accumulator that overflows into sorted **run** files, and
finish with a k-way parity merge (:func:`repro.engine.spill.
merge_parity`) of the untouched remainder, the runs, and the
accumulator back into a fresh shard.  Peak residency is one shard
plus one accumulator (~budget/2) instead of the whole matrix; the
budget therefore bounds the *intermediate*, while the final canonical
matrix — small by comparison, it is the answer — is materialized for
decode.  When the total shrinks back under half the budget the
shards are re-concatenated (tag order makes the concatenation
sorted) and the sweep continues in core.  Statistics stay exact:
shards partition the tag space, so per-cone counters never double-
count.  Spill directories are removed on success *and* on error, and
a round is all-or-nothing per shard, so the mode-neutral sweep-chunk
checkpoints in ``service/jobs.py`` resume a killed out-of-core run
the same way they resume an in-core one.

GPU dispatch
------------
The kernels above are written against the array surface numpy and
cupy share, reached through an :class:`repro.engine.xp.ArrayBackend`
(module handle + host/device boundary).  ``VectorEngine`` always
picks the host backend; the ``cuda`` engine
(:mod:`repro.engine.cuda`) subclasses it and swaps in cupy, keeping
the compiled program, the fused sweep, and the decode path — device
to host transfer happens exactly once, at the decode boundary.  The
byte-key incremental merge is host-only (cupy has no fixed-width
byte dtype), so device sweeps always take the full radix lexsort —
``supports_byte_keys`` on the backend records that.  Spilling is
host-only by construction; a budgeted sweep on the cuda engine runs
on the host spill path instead (its documented fallback when device
memory is the binding constraint).

Results are bit-identical to the reference backend (the differential
suite drives all packed engines across the generator zoo, in-core,
spilled, and device-dispatched); statistics and the memory-out point
are backend-specific, as the engine contract allows.

numpy is an *optional* dependency: :meth:`VectorEngine.availability`
reports why the backend is unusable (``None`` when it is), the
registry surfaces that reason, and everything else in the package
works without it.
"""

from __future__ import annotations

import time
from heapq import heappop, heappush
from typing import Any, Dict, Iterable, List, Optional, Tuple

from weakref import WeakKeyDictionary

from repro import telemetry as _telemetry
from repro.engine import spill as _spill
from repro.engine import xp as _xp
from repro.engine.aig import AigEngine, _missing_output_error
from repro.engine.base import EngineError, cone_span
from repro.engine.bitpack import PackedExpression
from repro.engine.interning import SignalInterner
from repro.gf2.polynomial import Gf2Poly
from repro.netlist.netlist import Netlist
from repro.rewrite.backward import (
    RewriteStats,
    TermLimitExceeded,
    TraceStep,
)

try:  # pragma: no cover - exercised via the no-numpy subprocess test
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

_WORD_BITS = 64
_WORD_MASK = (1 << _WORD_BITS) - 1
#: Largest product matrix materialized at once (rows).  Substitution
#: cancels chunk by chunk — exact, since run-parity cancellation is
#: associative — so the transient |affected|x|model| broadcast never
#: outgrows this bound and ``term_limit`` stays a real memory bound.
_CHUNK_ROWS = 1 << 16
#: Incremental-cancellation crossover: when one substitution step
#: produced fewer fresh rows than this fraction of the already-sorted
#: remainder, the fresh slice is cancelled on its own and merge-sorted
#: into place instead of re-lexsorting everything.
#: ``benchmarks/bench_fused.py`` measures the crossover and commits it
#: to ``BENCH_fused.json``: numpy's radix lexsort is near-linear, so
#: the merge only wins for genuinely tiny touches — the measured
#: break-even sits around 1/16 and the default follows it.
_MERGE_FRACTION = 0.0625
#: Below this many remainder rows a full lexsort is always cheaper
#: than building merge keys.
_MERGE_MIN_ROWS = 64


def _mask_rows(masks: List[int], words: int) -> "Any":
    """Python int bitmasks → a ``(len(masks), words)`` uint64 matrix.

    ``int.to_bytes`` writes each mask's little-endian words in one C
    call; ``frombuffer`` reinterprets the joined buffer as the matrix.
    Always a *host* matrix — device backends ``asarray`` the result.
    """
    width = words * 8
    buffer = b"".join(mask.to_bytes(width, "little") for mask in masks)
    rows = _np.frombuffer(buffer, dtype="<u8").reshape(len(masks), words)
    return rows.astype(_np.uint64, copy=True)  # writable, native order


def _rows_to_masks(matrix: "Any") -> "Any":
    """Matrix rows → python int bitmasks (the decode boundary).

    The row-major little-endian byte image of the matrix is sliced
    into one ``int.from_bytes`` call per row — no per-word python
    arithmetic.
    """
    words = matrix.shape[1]
    width = words * 8
    data = _np.ascontiguousarray(matrix).astype("<u8").tobytes()
    from_bytes = int.from_bytes
    return {
        from_bytes(data[start : start + width], "little")
        for start in range(0, len(data), width)
    }


def _pack_model(model, leaf_bits, intern) -> List[int]:
    """Pack one cut model into int bitmasks.

    Flat parts arrive as ready PI-space masks; opaque nodes resolve
    through the shared leaf table or intern via ``intern`` — the
    caller's hook, which also schedules newly seen nodes on its own
    worklist (heap for the per-bit sweep, next round for the fused
    one).  Shared by both sweeps so the packing rules cannot diverge.
    """
    masks: List[int] = []
    for pi_mask, opaque_nodes in model:
        mask = pi_mask
        for opaque in opaque_nodes:
            leaf_bit = leaf_bits.get(opaque)
            if leaf_bit is not None:
                mask |= 1 << leaf_bit
            else:
                mask |= 1 << intern(opaque)
        masks.append(mask)
    return masks


def _cancel_mod2(rows: "Any", xp: "Any" = None) -> "Any":
    """Drop rows of even multiplicity (the GF(2) cancellation).

    Lexsort groups equal rows; run lengths come from the boundary
    mask; odd-length runs keep one representative.  All C (or device
    kernel) passes — the body is written against the numpy/cupy
    shared surface and runs wherever ``rows`` lives.
    """
    xp = _np if xp is None else xp
    if rows.shape[0] < 2:
        return rows
    order = xp.lexsort(rows.T)
    ordered = rows[order]
    boundary = xp.empty(ordered.shape[0], dtype=bool)
    boundary[0] = True
    boundary[1:] = (ordered[1:] != ordered[:-1]).any(axis=1)
    starts = xp.flatnonzero(boundary)
    ends = xp.concatenate(
        [starts[1:], xp.asarray([ordered.shape[0]], dtype=starts.dtype)]
    )
    lengths = ends - starts
    return ordered[starts[(lengths & 1).astype(bool)]]


def _row_keys(rows: "Any") -> "Any":
    """Rows as fixed-width byte strings sorting like the lexsort.

    ``_cancel_mod2`` leaves matrices in ``lexsort(rows.T)`` order —
    the *last* column is the primary key — so reversing the columns
    and storing each word big-endian yields byte strings whose
    bytewise comparison reproduces that order exactly (and whose
    equality is exact row equality).  These keys make the sorted
    remainder binary-searchable for the incremental merge, and give
    the out-of-core k-way merge its comparison order.  Host-only:
    cupy has no fixed-width byte dtype.
    """
    swapped = _np.ascontiguousarray(rows[:, ::-1]).astype(">u8")
    return _np.frombuffer(
        swapped.tobytes(), dtype=f"S{8 * rows.shape[1]}"
    )


def _merge_sorted(base: "Any", fresh: "Any") -> "Any":
    """GF(2)-add a small cancelled slice into a sorted remainder.

    Both inputs are sorted and internally duplicate-free (``base`` is
    a cancelled matrix or a subset of one; ``fresh`` went through
    :func:`_cancel_mod2`).  Rows present in both carry even total
    multiplicity and cancel; the rest interleave by binary-searched
    positions — O(base) memcpy plus O(fresh·log base) search instead
    of a full lexsort over everything.  Host-only (byte keys).
    """
    base_keys = _row_keys(base)
    fresh_keys = _row_keys(fresh)
    pos = base_keys.searchsorted(fresh_keys)
    hit = pos < base_keys.shape[0]
    dup = _np.zeros(fresh.shape[0], dtype=bool)
    dup[hit] = base_keys[pos[hit]] == fresh_keys[hit]
    if dup.any():
        keep = _np.ones(base.shape[0], dtype=bool)
        keep[pos[dup]] = False
        base = base[keep]
        fresh = fresh[~dup]
        if not fresh.shape[0]:
            return base
        base_keys = base_keys[keep]
        pos = base_keys.searchsorted(_row_keys(fresh))
    return _np.insert(base, pos, fresh, axis=0)


def _combine(
    current: "Any",
    fresh: "Any",
    xp: "Any" = None,
    byte_keys: bool = True,
) -> "Any":
    """Cancel freshly produced rows into a sorted, cancelled matrix.

    Dispatches between the full lexsort and the incremental merge on
    the :data:`_MERGE_FRACTION` crossover; either way the result is
    sorted again, preserving the invariant every substitution step
    relies on.  ``byte_keys=False`` (device backends) always takes
    the full lexsort — the merge's binary-searched byte keys are a
    host-side construct, and the GPU's radix sort is the fast path
    there anyway.
    """
    xp = _np if xp is None else xp
    if not fresh.shape[0]:
        return current
    if (
        not byte_keys
        or current.shape[0] < _MERGE_MIN_ROWS
        or fresh.shape[0] >= _MERGE_FRACTION * current.shape[0]
    ):
        return _cancel_mod2(xp.concatenate([current, fresh]), xp)
    return _merge_sorted(current, _cancel_mod2(fresh))


def _or_mask_int(rows: "Any", xp: "Any" = None) -> int:
    """OR-reduce rows into one python int bitmask (the live image).

    numpy takes the single-pass ufunc reduce; other backends take a
    logarithmic fold (cupy does not expose ``ufunc.reduce`` for the
    bitwise family).  The result is a host ``int`` either way — the
    claim scan walks it bit by bit.
    """
    xp = _np if xp is None else xp
    if not rows.shape[0]:
        return 0
    if xp is _np:
        image = _np.bitwise_or.reduce(rows, axis=0)
    else:
        image = rows
        while image.shape[0] > 1:
            half = (image.shape[0] + 1) // 2
            head = image[:half].copy()
            tail = image[half:]
            head[: tail.shape[0]] |= tail
            image = head
        image = image[0]
    mask = 0
    for word, value in enumerate(image.tolist()):
        mask |= int(value) << (word * _WORD_BITS)
    return mask


def _widen_rows(rows: "Any", words: int, grown: int, xp: "Any" = None) -> "Any":
    """Grow a tagged matrix's mask region from ``words`` to ``grown``.

    Fresh (all-zero) mask words slot in *before* the tag column; zero
    keys tie everywhere, so sortedness and the per-cone grouping both
    survive the widening.
    """
    xp = _np if xp is None else xp
    return xp.hstack(
        [
            rows[:, :words],
            xp.zeros((rows.shape[0], grown - words), dtype=xp.uint64),
            rows[:, words:],
        ]
    )


class _Shard:
    """One spilled tag-range chunk of the fused matrix.

    ``or_mask`` is the OR image of the shard's mask words (tag
    excluded) — the spilled round's liveness test without touching
    disk; ``counts`` the per-tag row counts (zero outside the shard's
    range).  Shards partition the tag space, so summing either across
    shards is exact.
    """

    __slots__ = ("file", "or_mask", "counts")

    def __init__(self, file: "_spill.RowFile", or_mask: int, counts: "Any"):
        self.file = file
        self.or_mask = or_mask
        self.counts = counts


def _write_shards(
    rows: "Any",
    n_roots: int,
    shard_budget: int,
    directory: "_spill.SpillDir",
) -> List[_Shard]:
    """Tile a sorted tagged matrix into on-disk tag-range shards.

    Cuts happen only at tag boundaries (cancellation closure), packed
    greedily up to ``shard_budget`` bytes; a single cone whose slice
    alone exceeds the budget gets an oversized shard of its own — the
    budget must exceed the largest single cone's working set, which
    the README documents as the knob's floor.  ``rows`` may be a
    memmap; blocks stream through bounded host copies.
    """
    tags = _np.asarray(rows[:, -1], dtype=_np.uint64)
    bounds = tags.searchsorted(_np.arange(n_roots + 1, dtype=_np.uint64))
    row_bytes = rows.shape[1] * 8
    cuts = [0]
    pending = 0
    for tag in range(n_roots):
        segment = int(bounds[tag + 1] - bounds[tag])
        if pending and (pending + segment) * row_bytes > shard_budget:
            cuts.append(int(bounds[tag]))
            pending = 0
        pending += segment
    total = int(rows.shape[0])
    if cuts[-1] != total:
        cuts.append(total)
    shards: List[_Shard] = []
    for start, end in zip(cuts, cuts[1:]):
        if end == start:
            continue
        spilled = _spill.RowFile(
            directory.next_file("shard"), rows.shape[1]
        )
        or_mask = 0
        for block_start in range(start, end, _spill.MERGE_BLOCK_ROWS):
            block_end = min(block_start + _spill.MERGE_BLOCK_ROWS, end)
            block = _np.asarray(
                rows[block_start:block_end], dtype=_np.uint64
            )
            spilled.append(block)
            or_mask |= _or_mask_int(block[:, :-1])
        spilled.close()
        counts = _np.diff(_np.clip(bounds, start, end)).astype(_np.int64)
        shards.append(_Shard(spilled, or_mask, counts))
    return shards


def _load_shards(shards: List[_Shard], words: int) -> "Any":
    """Concatenate shards back into one in-core matrix (and delete).

    Shards are stored in tag order and each is internally sorted with
    the tag as primary key, so the concatenation is already in global
    lexsort order — no re-cancellation needed.
    """
    parts: List[Any] = []
    for shard in shards:
        loaded = _np.array(shard.file.open(), dtype=_np.uint64)
        if loaded.shape[1] < words + 1:
            loaded = _widen_rows(loaded, loaded.shape[1] - 1, words)
        if loaded.shape[0]:
            parts.append(loaded)
        shard.file.delete()
    if not parts:
        return _np.zeros((0, words + 1), dtype=_np.uint64)
    return _np.concatenate(parts)


class _MatrixExpression(PackedExpression):
    """A :class:`PackedExpression` whose mask set materializes lazily.

    The fused sweep ends with every cone's monomials as rows of one
    matrix; converting rows to python ``int`` masks is the single
    biggest per-cone cost left after vectorization, and extract-only
    flows may never need some cones decoded at all.  This subclass
    keeps the cone's row slice and builds the ``set[int]`` on first
    access (membership tests, equality, decode), after which it
    behaves exactly like its parent.
    """

    __slots__ = ("_rows", "_masks")

    def __init__(self, rows: "Any", interner: SignalInterner):
        self._rows = rows
        self._masks = None
        self.interner = interner

    @property
    def masks(self):  # shadows the parent's slot descriptor
        masks = self._masks
        if masks is None:
            masks = _rows_to_masks(self._rows)
            self._masks = masks
            self._rows = None  # the matrix slice is no longer needed
        return masks

    def term_count(self) -> int:
        rows = self._rows
        if rows is not None:
            return int(rows.shape[0])
        return len(self._masks)


class VectorEngine(AigEngine):
    """Backward rewriting over numpy uint64 bit-matrix polynomials.

    Subclasses :class:`~repro.engine.aig.AigEngine` for everything
    *around* the loop — the compiled program (and therefore the
    ``aig`` compiled-cache key), the flat fast path, the residue
    check, trace formatting — and replaces the per-monomial python
    loop with the vectorized substitution described in the module
    docstring.
    """

    name = "vector"

    def __init__(self) -> None:
        super().__init__()
        # Fused-sweep state (shared interning tables + packed model
        # matrices), keyed weakly by compiled program: the tables are
        # append-only and root-set independent, so sweeps over any
        # output subset — a checkpointed campaign's chunks included —
        # share one growing state and each model is packed once ever
        # per program.
        self._fused_state: "WeakKeyDictionary[Any, Dict[str, Any]]" = (
            WeakKeyDictionary()
        )

    @classmethod
    def availability(cls) -> Optional[str]:
        """Why this backend is unusable, or ``None`` when it works.

        The registry records this probe and surfaces the reason, so a
        request for an unusable engine fails actionably.
        """
        return _xp.numpy_unavailable_reason()

    @classmethod
    def available(cls) -> bool:
        """Whether the backend is usable (``availability() is None``)."""
        return cls.availability() is None

    def _sweep_backend(self, budget: Optional[int]) -> "_xp.ArrayBackend":
        """The array backend the fused sweep runs on (host here).

        Subclasses override: the ``cuda`` engine returns the cupy
        backend — except under a byte budget, where spilling (host-
        only by construction) is the documented fallback.
        """
        return _xp.numpy_backend()

    def rewrite_cone(
        self,
        netlist: Netlist,
        output: str,
        trace: bool = False,
        term_limit: Optional[int] = None,
        compile_cache: Optional[Any] = None,
    ) -> Tuple[PackedExpression, RewriteStats]:
        if _np is None:
            raise EngineError(
                "the vector engine needs numpy, which is not installed; "
                "use engine='aig' or 'bitpack' instead"
            )
        with cone_span(self, output) as span:
            expression, stats = self._rewrite_cone_matrix(
                netlist, output, trace, term_limit, compile_cache
            )
            span.annotate(
                iterations=stats.iterations, peak_terms=stats.peak_terms
            )
            stats.runtime_s = span.elapsed()
            return expression, stats

    def _rewrite_cone_matrix(
        self,
        netlist: Netlist,
        output: str,
        trace: bool,
        term_limit: Optional[int],
        compile_cache: Optional[Any],
    ) -> Tuple[PackedExpression, RewriteStats]:
        stats = RewriteStats(output=output)

        compiled = self._compiled_for(netlist, compile_cache)
        literal = compiled.net_literal.get(output)
        if literal is None:
            return super().rewrite_cone(
                netlist, output, trace=trace, term_limit=term_limit
            )  # raises the shared dangling-variable failure
        node = literal >> 1
        complemented = literal & 1

        flat = compiled.flats.get(node)
        if flat is not None:
            # Flat fast path — already a packed PI-space answer; no
            # matrix needed (identical to the aig engine's path).
            return super().rewrite_cone(
                netlist,
                output,
                trace=trace,
                term_limit=term_limit,
                compile_cache=compile_cache,
            )

        # Cone-local interning: shared leaf region + one bit per
        # opaque node, exactly as the aig engine assigns them.
        sig_index: Dict[str, int] = dict(compiled.leaf_index)
        sig_names: List[str] = list(compiled.leaf_names)
        index_of_node: Dict[int, int] = {}
        pending: List[Tuple[int, int]] = []

        def intern_node(opaque: int) -> int:
            index = index_of_node.get(opaque)
            if index is None:
                index = len(sig_names)
                index_of_node[opaque] = index
                sig_index[f"__aig{opaque}"] = index
                sig_names.append(f"__aig{opaque}")
            return index

        def intern_scheduled(opaque: int) -> int:
            # First sight also enters the worklist: the new variable's
            # own substitution is still pending.
            index = index_of_node.get(opaque)
            if index is None:
                index = intern_node(opaque)
                heappush(pending, (-opaque, index))
            return index

        out_index = intern_node(node)
        heappush(pending, (-node, out_index))

        words = (len(sig_names) // _WORD_BITS) + 2  # headroom for interning
        initial = [1 << out_index]
        if complemented:
            initial.append(0)
        # Cancelled matrices are sorted; establishing the invariant up
        # front lets every step use the incremental merge path.
        matrix = _cancel_mod2(_mask_rows(initial, words))

        iterations = 0
        touched = 0
        eliminated_total = 0
        peak_terms = matrix.shape[0]

        model_of = compiled.model_of
        leaf_bits = compiled.leaf_bits

        while pending:
            neg_node, var_index = heappop(pending)
            touched += 1

            # Pack the cut model first: interning may allocate new bit
            # indices (and grow the matrix width) before the bit-test.
            model_masks = _pack_model(
                model_of(-neg_node), leaf_bits, intern_scheduled
            )
            needed = (len(sig_names) + _WORD_BITS - 1) // _WORD_BITS
            if needed > words:
                grown = needed + 1
                matrix = _np.hstack(
                    [
                        matrix,
                        _np.zeros(
                            (matrix.shape[0], grown - words),
                            dtype=_np.uint64,
                        ),
                    ]
                )
                words = grown

            # The vectorized occurrence test: one bit probe per row.
            word, bit = divmod(var_index, _WORD_BITS)
            selector = (
                (matrix[:, word] >> _np.uint64(bit)) & _np.uint64(1)
            ).astype(bool)
            if not selector.any():
                # Variable cancelled away before its node was reached
                # (Algorithm 1 line 4 skip).
                continue

            affected = matrix[selector]  # boolean indexing copies
            current = matrix[~selector]
            affected[:, word] &= _np.uint64(_WORD_MASK ^ (1 << bit))
            model_rows = _mask_rows(model_masks, words)

            produced = int(current.shape[0])
            chunk = max(1, _CHUNK_ROWS // max(1, model_rows.shape[0]))
            for start in range(0, affected.shape[0], chunk):
                part = affected[start : start + chunk]
                products = (
                    part[:, None, :] | model_rows[None, :, :]
                ).reshape(-1, words)
                produced += int(products.shape[0])
                current = _combine(current, products)
                if current.shape[0] > peak_terms:
                    peak_terms = int(current.shape[0])
                    if term_limit is not None and peak_terms > term_limit:
                        stats.iterations = iterations
                        stats.cone_gates = touched
                        stats.eliminated_monomials = eliminated_total
                        stats.peak_terms = peak_terms
                        raise TermLimitExceeded(
                            output, peak_terms, term_limit
                        )
            matrix = current
            step_eliminated = produced - int(matrix.shape[0])

            iterations += 1
            eliminated_total += step_eliminated
            if trace:
                interner = SignalInterner(list(sig_names))
                decoded = Gf2Poly.from_monomials(
                    {
                        interner.unpack(mono)
                        for mono in _rows_to_masks(matrix)
                    }
                )
                stats.trace.append(
                    TraceStep(
                        gate=self._describe_node(compiled, -neg_node),
                        expression=str(decoded),
                        eliminated=f"{step_eliminated} monomials cancelled",
                    )
                )

        masks = _rows_to_masks(matrix)
        self._check_residue(compiled, netlist, output, masks)
        interner = SignalInterner.adopt(sig_index, sig_names)

        stats.iterations = iterations
        stats.cone_gates = touched
        stats.eliminated_monomials = eliminated_total
        stats.peak_terms = peak_terms
        stats.final_terms = len(masks)
        return PackedExpression(masks, interner), stats

    # -- fused multi-output sweep ---------------------------------------

    def rewrite_cones(
        self,
        netlist: Netlist,
        outputs: Iterable[str],
        term_limit: Optional[int] = None,
        compile_cache: Optional[Any] = None,
        max_bytes: Optional[int] = None,
    ) -> Dict[str, Tuple[PackedExpression, RewriteStats]]:
        """All requested cones in one fused substitution sweep.

        Flat outputs take the same fast path the per-bit engines use;
        the rest share one output-tagged bit-matrix (see the module
        docstring).  ``max_bytes`` (or ``REPRO_SWEEP_MAX_BYTES``)
        caps the live matrix: past half the budget the sweep goes
        out of core and streams rounds over on-disk tag-range shards.
        Expressions are bit-identical to the per-bit
        sweep; per-cone statistics are round-based and each cone's
        ``runtime_s`` is its attributed slice of the shared sweep:
        round time proportional to the rows the cone claimed, plus an
        equal share of the out-of-round overhead — the per-bit series
        sums to the sweep's wall clock.
        """
        if _np is None:
            raise EngineError(
                "the vector engine needs numpy, which is not installed; "
                "use engine='aig' or 'bitpack' instead "
                "(or fused=False for the per-bit path)"
            )
        budget = _spill.resolve_sweep_budget(max_bytes)
        backend = self._sweep_backend(budget)
        if budget is not None and backend.is_device:
            raise EngineError(
                "a sweep byte budget requires the host spill path; "
                f"the {backend.name} backend cannot honour max_bytes"
            )
        chosen = list(outputs)
        compiled = self._compiled_for(netlist, compile_cache)
        results: Dict[str, Tuple[PackedExpression, RewriteStats]] = {}
        roots: List[Tuple[str, int, int]] = []
        for output in chosen:
            literal = compiled.net_literal.get(output)
            if literal is None:
                raise _missing_output_error(output)
            node = literal >> 1
            if node in compiled.flats:
                # Flat fast path — identical to the per-bit engines.
                results[output] = super().rewrite_cone(
                    netlist,
                    output,
                    term_limit=term_limit,
                    compile_cache=compile_cache,
                )
            else:
                roots.append((output, node, literal & 1))
        if roots:
            with _telemetry.current().span(
                "sweep",
                engine=self.name,
                roots=len(roots),
                backend=backend.name,
                max_bytes=budget,
            ):
                results.update(
                    self._rewrite_fused(
                        netlist, compiled, roots, term_limit, backend, budget
                    )
                )
        return {output: results[output] for output in chosen}

    def _rewrite_fused(
        self,
        netlist: Netlist,
        compiled: Any,
        roots: List[Tuple[str, int, int]],
        term_limit: Optional[int],
        backend: "_xp.ArrayBackend",
        budget: Optional[int],
    ) -> Dict[str, Tuple[PackedExpression, RewriteStats]]:
        """The shared sweep over every non-flat root.

        Row layout: the monomial mask words first (same bit indices
        the per-bit sweep would assign, shared across cones), the
        owning output's tag as the final word — the lexsort's primary
        key, so cancellation groups per cone and the finished matrix
        needs no regrouping.  Each *round* claims, per row,
        the highest pending variable it holds — reverse-topological
        order applied row-wise — substitutes every claimed group with
        one broadcast, and cancels the whole matrix once; the sort
        keys include the tag word, so cancellation never crosses a
        cone boundary (Theorem 2).

        Array ops dispatch through ``backend`` (numpy or cupy); under
        a byte ``budget`` the matrix spills to tag-range shards and
        rounds stream shard by shard (module docstring, "Past the
        memory wall").
        """
        started = time.perf_counter()
        n_roots = len(roots)
        xp = backend.xp
        byte_keys = backend.supports_byte_keys

        # Shared interning: one leaf region and one bit per opaque
        # node for *all* cones — the per-bit sweep re-interns these
        # per cone; decode only depends on names, not bit positions.
        # The tables live per compiled *program* and are append-only,
        # so every sweep over the same program — including the
        # sweep-chunks a checkpointed campaign splits into — reuses
        # the bits and packed models of everything already seen:
        # each cut model is packed once ever per program.  Indices
        # never move, so interners adopted by earlier sweeps' results
        # stay valid, and variables interned for another chunk's
        # cones are simply never live in this matrix.
        state = self._fused_state.get(compiled)
        if state is None:
            state = {
                "sig_index": dict(compiled.leaf_index),
                "sig_names": list(compiled.leaf_names),
                "index_of_node": {},
                "packed_models": {},
                "tables": {},
            }
            self._fused_state[compiled] = state
        sig_index: Dict[str, int] = state["sig_index"]
        sig_names: List[str] = state["sig_names"]
        index_of_node: Dict[int, int] = state["index_of_node"]

        def intern_node(opaque: int) -> int:
            index = index_of_node.get(opaque)
            if index is None:
                index = len(sig_names)
                index_of_node[opaque] = index
                sig_index[f"__aig{opaque}"] = index
                sig_names.append(f"__aig{opaque}")
            return index

        initial_masks: List[int] = []
        initial_tags: List[int] = []
        for tag, (_output, node, complemented) in enumerate(roots):
            bit = intern_node(node)
            initial_masks.append(1 << bit)
            initial_tags.append(tag)
            if complemented:
                initial_masks.append(0)
                initial_tags.append(tag)

        # Row layout: mask words first, the output tag as the *last*
        # word.  ``lexsort`` keys on the last column first, so every
        # cancelled matrix comes out grouped by cone — cancellation
        # stays per-(tag, monomial) and the final per-cone slicing
        # needs no extra sort.
        words = (len(sig_names) // _WORD_BITS) + 2  # interning headroom
        seed = _np.zeros((len(initial_masks), words + 1), dtype=_np.uint64)
        seed[:, :words] = _mask_rows(initial_masks, words)
        seed[:, words] = initial_tags
        # establish the sorted invariant (on the sweep's backend)
        matrix = _cancel_mod2(backend.asarray(seed), xp)

        def counts_of(rows: "Any") -> "Any":
            if not rows.shape[0]:
                return xp.zeros(n_roots, dtype=xp.int64)
            return xp.bincount(
                rows[:, -1].astype(xp.int64), minlength=n_roots
            )

        iterations = [0] * n_roots   # rounds that touched the cone
        substituted = [0] * n_roots  # (round, variable) pairs per cone
        eliminated = [0] * n_roots
        peaks = _np.maximum(
            backend.to_host(counts_of(matrix)).astype(_np.int64), 1
        )

        model_of = compiled.model_of
        leaf_bits = compiled.leaf_bits
        packed_models: Dict[int, List[int]] = state["packed_models"]
        model_tables: Dict[Any, Tuple[int, Any]] = state["tables"]

        def table_of(var_index: int) -> "Any":
            """The variable's model as matrix rows (cached per width).

            The cache key carries the backend name: a budgeted sweep
            on a device engine falls back to the host path, and host
            and device tables must never mix.
            """
            key = (backend.name, var_index)
            entry = model_tables.get(key)
            if entry is not None and entry[0] == words:
                return entry[1]
            model_masks = packed_models[var_index]
            host_table = _np.zeros(
                (len(model_masks), words + 1), dtype=_np.uint64
            )
            host_table[:, :words] = _mask_rows(model_masks, words)
            table = (
                backend.asarray(host_table)
                if backend.is_device
                else host_table
            )
            model_tables[key] = (words, table)
            return table

        one = xp.uint64(1)
        leaf_count = len(compiled.leaf_names)
        survivors = 0  # leaf bits left standing when the sweep ends
        telemetry = _telemetry.current()
        round_index = 0
        # Per-cone wall-clock attribution: each round's time is split
        # over cones in proportion to the rows they had claimed, so the
        # per-bit ``runtime_s`` series is informative (not a flat
        # average) and still sums to the sweep's wall clock.
        tag_seconds = [0.0] * n_roots
        accounted = 0.0
        spill_dir: Optional[_spill.SpillDir] = None
        shards: Optional[List[_Shard]] = None
        shard_budget = max(1, budget // 4) if budget is not None else 0

        def claim_items(live_mask: int) -> List[Tuple[int, int]]:
            """Live (node, bit) pairs, highest node id first.

            Ascending AIG id is topological order, so this is the
            reverse-topological substitution order applied row-wise;
            a row's *first* hit in this order is the variable it
            claims this round.
            """
            return sorted(
                (
                    item
                    for item in index_of_node.items()
                    if (live_mask >> item[1]) & 1
                ),
                key=lambda item: -item[0],
            )

        def note_claims(group_of_h: "Any", claim_tags_h: "Any") -> None:
            """Per-cone round bookkeeping (host arrays).

            Tags are disjoint across shards — each cone lives in
            exactly one — so calling this once per shard never
            double-counts a (round, variable, cone) triple.
            """
            for pair in _np.unique(
                group_of_h * n_roots + claim_tags_h
            ).tolist():
                substituted[int(pair) % n_roots] += 1
            for tag in _np.unique(claim_tags_h).tolist():
                iterations[int(tag)] += 1

        try:
            while True:
                if shards is None:
                    # ---- in-core mode -------------------------------
                    if not matrix.shape[0]:
                        break
                    # One OR-reduce answers "does any pending variable
                    # survive anywhere" — the common exit — and doubles
                    # as the residue image of the finished matrix.
                    live_mask = _or_mask_int(matrix[:, :-1], xp)
                    if not live_mask >> leaf_count:
                        survivors = live_mask
                        break  # only leaf bits remain anywhere
                    if (
                        budget is not None
                        and int(matrix.nbytes) > budget // 2
                    ):
                        # Past half the budget: tile the matrix into
                        # tag-range shards and go out of core.  The
                        # other half of the budget stays free for the
                        # spilled rounds' shard + accumulator.
                        with telemetry.span(
                            "sweep.spill", round=round_index
                        ) as spill_span:
                            if spill_dir is None:
                                spill_dir = _spill.SpillDir()
                            host = backend.to_host(matrix)
                            spilled_bytes = int(host.nbytes)
                            shards = _write_shards(
                                host, n_roots, shard_budget, spill_dir
                            )
                            spill_span.annotate(
                                bytes=spilled_bytes, chunks=len(shards)
                            )
                        telemetry.counter(
                            "sweep.spilled_bytes", spilled_bytes
                        )
                        matrix = None
                        continue
                    telemetry.gauge(
                        "sweep.resident_bytes", int(matrix.nbytes)
                    )

                    round_span = telemetry.span(
                        "sweep.round",
                        round=round_index,
                        rows=int(matrix.shape[0]),
                    )
                    round_span.__enter__()

                    # Claim, per row, the highest pending variable it
                    # holds.  One gather + shift answers every
                    # (row, variable) pair, restricted to the variables
                    # the OR image proved live.
                    var_items = claim_items(live_mask)
                    var_bits = _np.fromiter(
                        (index for _, index in var_items),
                        dtype=_np.int64,
                        count=len(var_items),
                    )
                    var_cols_h = var_bits // _WORD_BITS
                    var_shift_h = (var_bits % _WORD_BITS).astype(_np.uint64)
                    strip_h = _np.uint64(_WORD_MASK) ^ (
                        _np.uint64(1) << var_shift_h
                    )
                    var_cols = xp.asarray(var_cols_h)
                    var_shift = xp.asarray(var_shift_h)
                    strip = xp.asarray(strip_h)
                    presence = (
                        (matrix[:, var_cols] >> var_shift[None, :]) & one
                    ).astype(bool)
                    has_var = presence.any(axis=1)
                    first = presence.argmax(axis=1)  # highest id per row

                    # Pack every claimed model first: interning may
                    # allocate fresh bits (new opaque nodes join later
                    # rounds) and the matrix must be widened before any
                    # row is combined.
                    group_of = first[has_var]
                    used_groups = xp.unique(group_of).tolist()
                    for group in used_groups:
                        node, var_index = var_items[int(group)]
                        if var_index in packed_models:
                            continue
                        # A node interned here (no scheduling hook
                        # needed) simply joins a later round's scan.
                        packed_models[var_index] = _pack_model(
                            model_of(node), leaf_bits, intern_node
                        )
                    needed = (
                        len(sig_names) + _WORD_BITS - 1
                    ) // _WORD_BITS
                    if needed > words:
                        grown = needed + 1
                        matrix = _widen_rows(matrix, words, grown, xp)
                        words = grown

                    # One concatenated model table for the round, plus
                    # offsets, so the substitution below is a single
                    # repeat + gather.
                    model_offset_h = _np.zeros(
                        len(var_items), dtype=_np.int64
                    )
                    model_count_h = _np.zeros(
                        len(var_items), dtype=_np.int64
                    )
                    tables: List[Any] = []
                    offset = 0
                    for group in used_groups:
                        _node, var_index = var_items[int(group)]
                        table = table_of(var_index)
                        tables.append(table)
                        model_offset_h[int(group)] = offset
                        model_count_h[int(group)] = table.shape[0]
                        offset += int(table.shape[0])
                    models = xp.concatenate(tables)
                    model_offset = xp.asarray(model_offset_h)
                    model_count = xp.asarray(model_count_h)

                    claimed = matrix[has_var]  # boolean indexing copies
                    current = matrix[~has_var]  # sorted stays sorted
                    claimed[
                        xp.arange(claimed.shape[0]), var_cols[group_of]
                    ] &= strip[group_of]

                    # Per-cone bookkeeping before the rows multiply.
                    claim_tags = claimed[:, -1].astype(xp.int64)
                    prior = counts_of(current)
                    rep = model_count[group_of]
                    produced = xp.bincount(
                        claim_tags, weights=rep, minlength=n_roots
                    ).astype(xp.int64)
                    note_claims(
                        backend.to_host(group_of),
                        backend.to_host(claim_tags),
                    )

                    # Substitute in chunks: row i expands to its
                    # group's model rows (repeat + gather), the OR
                    # multiplies, and each chunk cancels immediately so
                    # the transient stays bounded.
                    cum = xp.concatenate(
                        [
                            xp.zeros(1, dtype=xp.int64),
                            xp.cumsum(rep).astype(xp.int64),
                        ]
                    )
                    start = 0
                    while start < claimed.shape[0]:
                        end = int(
                            xp.searchsorted(
                                cum,
                                int(cum[start]) + _CHUNK_ROWS,
                                side="left",
                            )
                        )
                        end = max(end - 1, start + 1)
                        rep_part = rep[start:end]
                        with telemetry.span(
                            "substitute",
                            round=round_index,
                            rows=int(end - start),
                        ):
                            left = xp.repeat(
                                claimed[start:end], rep_part, axis=0
                            )
                            part_cum = xp.concatenate(
                                [
                                    xp.zeros(1, dtype=xp.int64),
                                    xp.cumsum(rep_part).astype(xp.int64),
                                ]
                            )
                            within = (
                                xp.arange(
                                    int(part_cum[-1]), dtype=xp.int64
                                )
                                - xp.repeat(part_cum[:-1], rep_part)
                            )
                            right = models[
                                xp.repeat(
                                    model_offset[group_of[start:end]],
                                    rep_part,
                                )
                                + within
                            ]
                            products = left | right
                        with telemetry.span(
                            "cancel",
                            round=round_index,
                            rows=int(products.shape[0]),
                        ):
                            current = _combine(
                                current, products, xp, byte_keys
                            )
                        counts = counts_of(current)
                        counts_h = backend.to_host(counts).astype(
                            _np.int64
                        )
                        _np.maximum(peaks, counts_h, out=peaks)
                        if term_limit is not None:
                            worst = int(counts_h.argmax())
                            if counts_h[worst] > term_limit:
                                raise TermLimitExceeded(
                                    roots[worst][0],
                                    int(counts_h[worst]),
                                    term_limit,
                                )
                        start = end
                    matrix = current
                    gone = backend.to_host(
                        prior + produced - counts_of(matrix)
                    )
                    for tag in range(n_roots):
                        eliminated[tag] += int(gone[tag])

                    round_span.annotate(
                        claimed=int(claimed.shape[0]),
                        produced=int(backend.to_host(produced).sum()),
                        terms=int(matrix.shape[0]),
                    )
                    round_span.__exit__(None, None, None)
                    device_bytes = backend.device_bytes()
                    if device_bytes is not None:
                        telemetry.gauge("sweep.device_bytes", device_bytes)
                    round_wall = round_span.wall_s
                    accounted += round_wall
                    claims_h = backend.to_host(
                        xp.bincount(claim_tags, minlength=n_roots)
                    )
                    total_claims = int(claims_h.sum())
                    if total_claims:
                        shares = claims_h * (round_wall / total_claims)
                        for tag in range(n_roots):
                            tag_seconds[tag] += float(shares[tag])
                    round_index += 1
                    continue

                # ---- spilled (out-of-core) mode ---------------------
                live_mask = 0
                for shard in shards:
                    live_mask |= shard.or_mask
                if not live_mask >> leaf_count:
                    survivors = live_mask
                    break

                rows_total = sum(
                    shard.file.rows for shard in shards
                )
                round_span = telemetry.span(
                    "sweep.round",
                    round=round_index,
                    rows=rows_total,
                    spilled=True,
                )
                round_span.__enter__()

                var_items = claim_items(live_mask)
                # Pack *every* live model up front: interning settles
                # the row width before any shard loads, so all of the
                # round's shards and runs share one width.  (Models
                # are packed once ever per program either way.)
                for node, var_index in var_items:
                    if var_index not in packed_models:
                        packed_models[var_index] = _pack_model(
                            model_of(node), leaf_bits, intern_node
                        )
                needed = (len(sig_names) + _WORD_BITS - 1) // _WORD_BITS
                if needed > words:
                    words = needed + 1
                var_bits = _np.fromiter(
                    (index for _, index in var_items),
                    dtype=_np.int64,
                    count=len(var_items),
                )
                var_cols = var_bits // _WORD_BITS
                var_shift = (var_bits % _WORD_BITS).astype(_np.uint64)
                strip = _np.uint64(_WORD_MASK) ^ (
                    _np.uint64(1) << var_shift
                )
                one_h = _np.uint64(1)

                claimed_round = 0
                produced_round = 0
                resident_peak = 0
                claims_round = _np.zeros(n_roots, dtype=_np.int64)
                new_shards: List[_Shard] = []
                for shard in shards:
                    if not shard.or_mask >> leaf_count:
                        # Every cone in this shard already finished;
                        # its rows stay untouched on disk.
                        new_shards.append(shard)
                        continue
                    loaded = _np.array(
                        shard.file.open(), dtype=_np.uint64
                    )
                    if loaded.shape[1] < words + 1:
                        loaded = _widen_rows(
                            loaded, loaded.shape[1] - 1, words
                        )
                    resident_peak = max(
                        resident_peak, int(loaded.nbytes)
                    )
                    presence = (
                        (loaded[:, var_cols] >> var_shift[None, :])
                        & one_h
                    ).astype(bool)
                    has_var = presence.any(axis=1)
                    if not has_var.any():  # pragma: no cover - or_mask
                        new_shards.append(shard)  # proved a claim exists
                        continue
                    first = presence.argmax(axis=1)
                    group_of = first[has_var]
                    claimed = loaded[has_var]
                    rest = loaded[~has_var]
                    del loaded, presence, first, has_var
                    claimed[
                        _np.arange(claimed.shape[0]),
                        var_cols[group_of],
                    ] &= strip[group_of]
                    claim_tags = claimed[:, -1].astype(_np.int64)

                    used_groups = _np.unique(group_of).tolist()
                    model_offset = _np.zeros(
                        len(var_items), dtype=_np.int64
                    )
                    model_count = _np.zeros(
                        len(var_items), dtype=_np.int64
                    )
                    tables = []
                    offset = 0
                    for group in used_groups:
                        _node, var_index = var_items[int(group)]
                        table = table_of(var_index)
                        tables.append(table)
                        model_offset[int(group)] = offset
                        model_count[int(group)] = table.shape[0]
                        offset += int(table.shape[0])
                    models = _np.concatenate(tables)

                    rep = model_count[group_of]
                    produced = _np.bincount(
                        claim_tags, weights=rep, minlength=n_roots
                    ).astype(_np.int64)
                    note_claims(group_of, claim_tags)
                    claimed_round += int(claimed.shape[0])
                    produced_round += int(produced.sum())
                    claims_round += _np.bincount(
                        claim_tags, minlength=n_roots
                    )

                    # Substitute into a bounded accumulator; when it
                    # outgrows its quarter of the budget it flushes to
                    # a sorted run file — the merge below treats runs
                    # and the accumulator identically.
                    acc = _np.zeros((0, words + 1), dtype=_np.uint64)
                    runs: List[_spill.RowFile] = []
                    cum = _np.concatenate(
                        ([0], _np.cumsum(rep))
                    ).astype(_np.int64)
                    start = 0
                    while start < claimed.shape[0]:
                        end = int(
                            _np.searchsorted(
                                cum,
                                cum[start] + _CHUNK_ROWS,
                                side="left",
                            )
                        )
                        end = max(end - 1, start + 1)
                        rep_part = rep[start:end]
                        with telemetry.span(
                            "substitute",
                            round=round_index,
                            rows=int(end - start),
                        ):
                            left = _np.repeat(
                                claimed[start:end], rep_part, axis=0
                            )
                            part_cum = _np.concatenate(
                                ([0], _np.cumsum(rep_part))
                            )
                            within = (
                                _np.arange(
                                    part_cum[-1], dtype=_np.int64
                                )
                                - _np.repeat(part_cum[:-1], rep_part)
                            )
                            right = models[
                                _np.repeat(
                                    model_offset[
                                        group_of[start:end]
                                    ],
                                    rep_part,
                                )
                                + within
                            ]
                            products = left | right
                        with telemetry.span(
                            "cancel",
                            round=round_index,
                            rows=int(products.shape[0]),
                        ):
                            acc = _combine(acc, products)
                        if int(acc.nbytes) > shard_budget:
                            run = _spill.write_rows(
                                spill_dir.next_file("run"), acc
                            )
                            telemetry.counter(
                                "sweep.spilled_bytes", int(acc.nbytes)
                            )
                            runs.append(run)
                            acc = _np.zeros(
                                (0, words + 1), dtype=_np.uint64
                            )
                        start = end
                    resident_peak = max(
                        resident_peak,
                        int(claimed.nbytes)
                        + int(rest.nbytes)
                        + int(acc.nbytes),
                    )
                    del claimed

                    # K-way parity merge of the untouched remainder,
                    # the flushed runs, and the live accumulator back
                    # into one fresh shard — sorted, cancelled, and
                    # counted per tag as it streams.
                    sources: List[Any] = []
                    if rest.shape[0]:
                        sources.append(rest)
                    sources.extend(run.open() for run in runs)
                    if acc.shape[0]:
                        sources.append(acc)
                    merged = _spill.RowFile(
                        spill_dir.next_file("shard"), words + 1
                    )
                    or_mask = 0
                    after = _np.zeros(n_roots, dtype=_np.int64)
                    with telemetry.span(
                        "sweep.merge",
                        round=round_index,
                        runs=len(sources),
                    ) as merge_span:
                        for block in _spill.merge_parity(
                            sources, _row_keys, _cancel_mod2
                        ):
                            merged.append(block)
                            or_mask |= _or_mask_int(block[:, :-1])
                            after += _np.bincount(
                                block[:, -1].astype(_np.int64),
                                minlength=n_roots,
                            )
                        merged.close()
                        merge_span.annotate(
                            rows=merged.rows, bytes=merged.nbytes
                        )
                    shard.file.delete()
                    for run in runs:
                        run.delete()

                    gone = shard.counts + produced - after
                    for tag in range(n_roots):
                        eliminated[tag] += int(gone[tag])
                    _np.maximum(peaks, after, out=peaks)
                    if term_limit is not None:
                        worst = int(after.argmax())
                        if after[worst] > term_limit:
                            raise TermLimitExceeded(
                                roots[worst][0],
                                int(after[worst]),
                                term_limit,
                            )

                    if merged.rows == 0:
                        merged.delete()
                    elif (
                        merged.nbytes > shard_budget
                        and int((after > 0).sum()) > 1
                    ):
                        # The merged shard outgrew its slot and spans
                        # more than one cone: re-tile it so the next
                        # round's residency stays bounded.
                        new_shards.extend(
                            _write_shards(
                                merged.open(),
                                n_roots,
                                shard_budget,
                                spill_dir,
                            )
                        )
                        merged.delete()
                    else:
                        new_shards.append(
                            _Shard(merged, or_mask, after)
                        )
                shards = new_shards

                telemetry.gauge("sweep.resident_bytes", resident_peak)
                round_span.annotate(
                    claimed=claimed_round,
                    produced=produced_round,
                    terms=sum(shard.file.rows for shard in shards),
                )
                round_span.__exit__(None, None, None)
                round_wall = round_span.wall_s
                accounted += round_wall
                total_claims = int(claims_round.sum())
                if total_claims:
                    shares = claims_round * (round_wall / total_claims)
                    for tag in range(n_roots):
                        tag_seconds[tag] += float(shares[tag])
                round_index += 1

                # Shrunk back under half the budget?  Come home: the
                # shards are in tag order and the tag is the primary
                # sort key, so concatenation is already sorted.
                total_bytes = sum(
                    shard.file.nbytes for shard in shards
                )
                if total_bytes <= budget // 2:
                    matrix = _load_shards(shards, words)
                    shards = None

            if shards is not None:
                # The sweep finished out of core; materialize the
                # canonical matrix (the *answer* — small next to the
                # intermediates the budget existed to bound).
                matrix = _load_shards(shards, words)
                shards = None
        finally:
            if spill_dir is not None:
                spill_dir.cleanup()

        # The tag is the sort's primary key, so the cancelled matrix
        # is already grouped by cone: per-cone results are zero-copy
        # slices between searchsorted bounds.  ``survivors`` (the
        # final OR image) makes the residue check O(1) in the common
        # all-declared case; only a genuine leftover walks per cone.
        with telemetry.span(
            "decode", cones=n_roots, rows=int(matrix.shape[0])
        ):
            # The one device→host transfer of the whole sweep.
            matrix = backend.to_host(matrix)
            bounds = _np.searchsorted(
                matrix[:, -1],
                _np.arange(n_roots + 1, dtype=_np.uint64),
            )
            if survivors & compiled.undeclared_bits:
                for tag, (output, _node, _complemented) in enumerate(roots):
                    self._check_residue(
                        compiled,
                        netlist,
                        output,
                        _rows_to_masks(
                            matrix[bounds[tag] : bounds[tag + 1], :-1]
                        ),
                    )

            # Decode boundary, per cone: the interner is shared
            # (read-only from here on) and each cone's rows decode
            # lazily — a caller that never reads an expression never
            # pays its conversion.
            interner = SignalInterner.adopt(sig_index, sig_names)

        # Round time was attributed by claimed rows above; the
        # out-of-round overhead (setup, claim scans, decode) is shared
        # equally, so the per-bit series still sums to the sweep wall.
        residual = max(
            0.0, time.perf_counter() - started - accounted
        ) / n_roots
        results: Dict[str, Tuple[PackedExpression, RewriteStats]] = {}
        for tag, (output, _node, _complemented) in enumerate(roots):
            rows = matrix[bounds[tag] : bounds[tag + 1], :-1]
            stats = RewriteStats(output=output)
            stats.iterations = iterations[tag]
            stats.cone_gates = substituted[tag]
            stats.eliminated_monomials = eliminated[tag]
            stats.peak_terms = int(peaks[tag])
            stats.final_terms = int(rows.shape[0])
            stats.runtime_s = tag_seconds[tag] + residual
            results[output] = (_MatrixExpression(rows, interner), stats)
        return results
