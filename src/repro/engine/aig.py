"""Cut-based backward rewriting over the hash-consed AIG.

Motivation
----------
The ``bitpack`` engine rewrites *gate by gate*: every cell of the cone
contributes its own algebraic model, so on technology-mapped netlists —
where a single XOR became four NANDs and inverter ladders thread every
cell — the intermediate expression churns through thousands of
``1 + x``-shaped monomials that only cancel several substitutions
later.  This backend removes that blowup structurally:

* the netlist is first **strashed into the AIG**
  (:meth:`repro.aig.Aig.from_netlist`) — inverter pairs vanish into
  complement edges and duplicated mapped structure is shared by
  construction;
* a forward pass **flattens** each node into a packed PI-space
  polynomial while it stays below a size bound; complements cost one
  constant-monomial toggle instead of a model substitution, so
  flattening reaches much further than the netlist-level pass;
* nodes above the bound get their substitution model from the best
  **k-feasible cut** (:mod:`repro.aig.cuts`): the cut cone's exact ANF
  is computed from a truth table, so a four-NAND XOR — or any other
  mapped cluster inside the cut — collapses to its two-term polynomial
  *before* backward rewriting ever sees it, cut by cut instead of gate
  by gate.

The rewriting loop itself reuses the bitpack machinery — interned
bitmask monomials (:mod:`repro.engine.interning`), the occurrence
index and the reverse-topological worklist — with AIG node ids taking
the place of topological gate positions (ascending node id *is* the
topological order).  Results are bit-identical to the reference
backend (differential-tested); statistics and the memory-out point are
backend-specific, as the engine contract allows.
"""

from __future__ import annotations

from array import array
from heapq import heappop, heappush
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.aig import Aig, enumerate_cuts, cut_truth_table, truth_table_to_anf
from repro.aig.cuts import iter_cuts
from repro.engine.base import CompilingEngine, cone_span
from repro.engine.bitpack import PackedExpression, _flat_product
from repro.engine.interning import SignalInterner
from repro.gf2.polynomial import Gf2Poly
from repro.netlist.netlist import Netlist
from repro.rewrite.backward import (
    BackwardRewriteError,
    RewriteStats,
    TermLimitExceeded,
    TraceStep,
)

#: Largest packed PI-space polynomial a node may flatten to.
_FLAT_BOUND = 64
#: Abort threshold for expanding flat cut leaves inside one monomial.
_EXPAND_BOUND = 2048
#: Largest pairwise product cost (|p|·|q|) attempted directly; above
#: it the cut route decides (its ANF may avoid the product entirely —
#: a mapped XOR cluster is a symmetric difference over the right cut).
_PAIR_BUDGET = 1024
#: Cut enumeration parameters: leaf limit and cuts tried per node.
_CUT_K = 4
_CUT_LIMIT = 16

#: A substitution model: mod-2 monomials as (pi_mask, opaque node ids).
_Model = Tuple[Tuple[int, Tuple[int, ...]], ...]


class _CompiledAig:
    """One netlist strashed, flattened and cut-modelled for rewriting."""

    __slots__ = (
        "aig",
        "net_literal",
        "leaf_index",
        "leaf_names",
        "leaf_bits",
        "undeclared_bits",
        "flats",
        "n_gates",
        "_models",
        # The vector engine's fused sweep caches per-program state
        # (packed model tables) in a weak-keyed map; see VectorEngine.
        "__weakref__",
    )

    def __init__(self, netlist: Netlist):
        aig = Aig.from_netlist(netlist)
        self.aig = aig
        self.net_literal = aig.net_literal
        self.n_gates = len(netlist)

        #: Leaves occupy the low bit indices, shared by every cone.
        self.leaf_names: List[str] = []
        self.leaf_index: Dict[str, int] = {}
        self.leaf_bits: Dict[int, int] = {}
        declared = set(netlist.inputs)
        undeclared = 0
        for node in range(1, len(aig)):
            if not aig.is_leaf(node):
                continue
            bit = len(self.leaf_names)
            name = aig.pi_name[node]
            self.leaf_index[name] = bit
            self.leaf_names.append(name)
            self.leaf_bits[node] = bit
            if name not in declared:
                undeclared |= 1 << bit
        self.undeclared_bits = undeclared

        self.flats: Dict[int, Set[int]] = self._flatten()
        self._models: Dict[int, _Model] = {}

    # -- forward flattening ---------------------------------------------

    def _flatten(self) -> Dict[int, Set[int]]:
        """Packed PI-space polynomial of every node below the bound.

        Exact mod-2 algebra: XOR nodes are symmetric differences,
        complement edges toggle the constant monomial, AND nodes
        multiply with cancellation — so flattening performs the same
        cancellations backward rewriting would, just once per node
        instead of once per cone.
        """
        aig = self.aig
        flats: Dict[int, Set[int]] = {0: set()}
        for node, bit in self.leaf_bits.items():
            flats[node] = {1 << bit}
        for node in range(1, len(aig)):
            if aig.is_leaf(node):
                continue
            f0, f1 = aig.fanins(node)
            p0 = flats.get(f0 >> 1)
            p1 = flats.get(f1 >> 1)
            poly: Optional[Set[int]] = None
            if p0 is not None and p1 is not None:
                if f0 & 1:
                    p0 = p0.symmetric_difference((0,))
                if f1 & 1:
                    p1 = p1.symmetric_difference((0,))
                if aig.is_xor(node):
                    poly = p0.symmetric_difference(p1)
                elif len(p0) * len(p1) <= _PAIR_BUDGET:
                    poly = _flat_product([p0, p1], _FLAT_BOUND)
            if poly is None and aig.is_and(node):
                poly = self._flatten_via_cuts(node, flats)
            if poly is not None and len(poly) <= _FLAT_BOUND:
                flats[node] = poly
        return flats

    # -- serialization ---------------------------------------------------
    #
    # Compiled programs travel through the fingerprint-keyed cache
    # (:mod:`repro.service.cache`), and a warm load must be a small
    # fraction of a recompile.  The default pickle of the embedded
    # :class:`~repro.aig.Aig` spends most of its bytes on the strash
    # table — pure construction state a finished program never touches
    # — so the custom state drops it and packs the node arrays as raw
    # ``array('q')`` bytes (memcpy-speed on load).  Lazily built cut
    # models are included: a program re-stored after rewriting
    # (:meth:`AigEngine.finalize` via the program marker) hands the
    # next cold process its models for free.  The deserialized graph
    # is read-only — growing it would bypass hash-consing.

    def __getstate__(self):
        aig = self.aig
        return {
            "name": aig.name,
            "kinds": bytes(aig.kinds),
            "fanin0": array("q", aig.fanin0).tobytes(),
            "fanin1": array("q", aig.fanin1).tobytes(),
            "pi_name": aig.pi_name,
            "inputs": aig.inputs,
            "outputs": aig.outputs,
            "net_literal": aig.net_literal,
            "leaf_index": self.leaf_index,
            "leaf_names": self.leaf_names,
            "leaf_bits": self.leaf_bits,
            "undeclared_bits": self.undeclared_bits,
            # Tuples load ~3x faster than sets and every post-compile
            # consumer only iterates/len()s/copies flat polynomials.
            "flats": {
                node: tuple(poly) for node, poly in self.flats.items()
            },
            "n_gates": self.n_gates,
            "models": self._models,
        }

    def __setstate__(self, state):
        aig = Aig(state["name"])
        aig.kinds = list(state["kinds"])
        fanin0 = array("q")
        fanin0.frombytes(state["fanin0"])
        fanin1 = array("q")
        fanin1.frombytes(state["fanin1"])
        aig.fanin0 = list(fanin0)
        aig.fanin1 = list(fanin1)
        aig.pi_name = state["pi_name"]
        aig.inputs = state["inputs"]
        aig.outputs = state["outputs"]
        aig.net_literal = state["net_literal"]
        aig._leaf_lit = {
            name: node << 1 for node, name in aig.pi_name.items()
        }
        self.aig = aig
        self.net_literal = aig.net_literal
        self.leaf_index = state["leaf_index"]
        self.leaf_names = state["leaf_names"]
        self.leaf_bits = state["leaf_bits"]
        self.undeclared_bits = state["undeclared_bits"]
        self.flats = state["flats"]
        self.n_gates = state["n_gates"]
        self._models = state["models"]

    def _flatten_via_cuts(
        self, node: int, flats: Dict[int, Set[int]]
    ) -> Optional[Set[int]]:
        """Flat polynomial through the cheapest all-flat cut, if any.

        The ANF over a well-chosen cut sidesteps the pairwise product:
        a technology-mapped XOR cluster whose direct product would cost
        |p|·|q| is, over the cut at its true fanins, the linear
        ``1 + l0 + l1`` — the structural reason this backend does not
        pay the mapped-netlist blowup.
        """
        # Nearest all-flat cut that fits wins: deeper cuts are only
        # reached when the nearer frontier still contains non-flat
        # leaves (exactly the mapped-cluster case), so the expensive
        # part (truth table + expansion) runs at most a couple of
        # times per node.
        for cut in iter_cuts(self.aig, node, k=_CUT_K, limit=_CUT_LIMIT):
            if cut == (node,):
                continue
            polys = []
            estimate = 1
            for leaf in cut:
                poly = flats.get(leaf)
                if poly is None:
                    polys = None
                    break
                polys.append(poly)
                estimate *= 1 + len(poly)
            if polys is None or estimate > 4 * _PAIR_BUDGET:
                continue
            anf = truth_table_to_anf(
                cut_truth_table(self.aig, node, cut), len(cut)
            )
            total: Optional[Set[int]] = set()
            for mono_mask in anf:
                selected = [
                    polys[position]
                    for position in range(len(cut))
                    if (mono_mask >> position) & 1
                ]
                product = _flat_product(selected, _FLAT_BOUND)
                if product is None:
                    total = None
                    break
                total.symmetric_difference_update(product)
                if len(total) > _FLAT_BOUND:
                    total = None
                    break
            if total is not None and len(total) <= _FLAT_BOUND:
                return total
        return None

    # -- cut models ------------------------------------------------------

    def model_of(self, node: int) -> _Model:
        """Substitution model of an AND/XOR node (lazy, memoized)."""
        model = self._models.get(node)
        if model is None:
            model = self._build_model(node)
            self._models[node] = model
        return model

    def _build_model(self, node: int) -> _Model:
        best: Optional[_Model] = None
        best_score = None
        for cut in enumerate_cuts(self.aig, node, k=_CUT_K, limit=_CUT_LIMIT):
            if cut == (node,):
                continue  # a model must reference strictly earlier nodes
            model = self._cut_model(node, cut)
            if model is None:
                continue
            opaque_entries = sum(1 for _, opaque in model if opaque)
            score = (opaque_entries, len(model))
            if best_score is None or score < best_score:
                best, best_score = model, score
                if score == (0, 1):
                    break
        if best is None:
            # Guaranteed fallback: the direct-fanin cut with every
            # non-trivial leaf kept as a variable never explodes.
            f0, f1 = self.aig.fanins(node)
            best = self._cut_model(
                node, tuple(sorted({f0 >> 1, f1 >> 1})), max_leaf_flat=1
            )
            assert best is not None
        return best

    def _cut_model(
        self,
        node: int,
        cut: Tuple[int, ...],
        max_leaf_flat: int = _FLAT_BOUND,
    ) -> Optional[_Model]:
        """The cut cone's exact ANF, expanded into PI space.

        Flat leaves whose polynomial has at most ``max_leaf_flat``
        monomials are multiplied out; the rest stay opaque variables.
        Returns ``None`` when an expansion outgrows the bound.
        """
        table = cut_truth_table(self.aig, node, cut)
        anf = truth_table_to_anf(table, len(cut))
        flats = self.flats
        estimate = 0
        for mono_mask in anf:
            cost = 1
            remaining = mono_mask
            position = 0
            while remaining:
                if remaining & 1:
                    poly = flats.get(cut[position])
                    if poly is not None and len(poly) <= max_leaf_flat:
                        cost *= len(poly)
                remaining >>= 1
                position += 1
            estimate += cost
        if estimate > 4 * _EXPAND_BOUND:
            return None
        counts: Dict[Tuple[int, Tuple[int, ...]], int] = {}
        for mono_mask in anf:
            flat_polys: List[Set[int]] = []
            opaque: List[int] = []
            remaining = mono_mask
            position = 0
            while remaining:
                if remaining & 1:
                    leaf = cut[position]
                    poly = flats.get(leaf)
                    if poly is not None and len(poly) <= max_leaf_flat:
                        flat_polys.append(poly)
                    else:
                        opaque.append(leaf)
                remaining >>= 1
                position += 1
            product = _flat_product(flat_polys, _EXPAND_BOUND)
            if product is None:
                return None
            key_nodes = tuple(sorted(opaque))
            for mask in product:
                key = (mask, key_nodes)
                counts[key] = counts.get(key, 0) ^ 1
        return tuple(key for key, parity in counts.items() if parity)


def _missing_output_error(output: str) -> BackwardRewriteError:
    """A net the netlist never mentions: the same failure the other
    backends report for a dangling variable (shared by the per-bit and
    fused paths of the compiled engines)."""
    return BackwardRewriteError(
        f"rewriting {output!r} left non-input variables "
        f"[{output!r}] — netlist is not a complete "
        "combinational cone"
    )


class AigEngine(CompilingEngine):
    """Backward rewriting cut-by-cut over the strashed AIG."""

    name = "aig"
    #: Bump on any change to :class:`_CompiledAig`'s layout.  The
    #: ``vector`` backend compiles the very same program, so both
    #: share the ``aig`` key in the compiled-program cache.
    compile_schema = 1
    compile_key = "aig"

    def _compile(self, netlist: Netlist) -> _CompiledAig:
        return _CompiledAig(netlist)

    def _program_marker(self, compiled: _CompiledAig) -> int:
        # Cut models accrete lazily during rewriting; a changed count
        # makes finalize() re-store the program so the next cold
        # process inherits them.
        return len(compiled._models)

    def _check_residue(
        self,
        compiled: _CompiledAig,
        netlist: Netlist,
        output: str,
        masks: Set[int],
    ) -> None:
        """Leaves the netlist never declared must not survive rewriting."""
        residue = 0
        for mask in masks:
            residue |= mask
        residue &= compiled.undeclared_bits
        if not residue:
            return
        declared_now = set(netlist.inputs)
        leftovers = []
        while residue:
            low = residue & -residue
            name = compiled.leaf_names[low.bit_length() - 1]
            if name not in declared_now:
                leftovers.append(name)
            residue ^= low
        if leftovers:
            raise BackwardRewriteError(
                f"rewriting {output!r} left non-input variables "
                f"{sorted(leftovers)[:5]} — netlist is not a complete "
                "combinational cone"
            )

    def _describe_node(self, compiled: _CompiledAig, node: int) -> str:
        aig = compiled.aig
        f0, f1 = aig.fanins(node)
        op = "XOR" if aig.is_xor(node) else "AND"
        operands = ", ".join(
            ("!" if lit & 1 else "") + (
                aig.pi_name.get(lit >> 1, f"n{lit >> 1}")
            )
            for lit in (f0, f1)
        )
        return f"n{node} = {op}({operands})"

    def rewrite_cone(
        self,
        netlist: Netlist,
        output: str,
        trace: bool = False,
        term_limit: Optional[int] = None,
        compile_cache: Optional[Any] = None,
    ) -> Tuple[PackedExpression, RewriteStats]:
        with cone_span(self, output) as span:
            expression, stats = self._rewrite_cone_impl(
                netlist, output, trace, term_limit, compile_cache
            )
            span.annotate(
                iterations=stats.iterations, peak_terms=stats.peak_terms
            )
            stats.runtime_s = span.elapsed()
            return expression, stats

    def _rewrite_cone_impl(
        self,
        netlist: Netlist,
        output: str,
        trace: bool,
        term_limit: Optional[int],
        compile_cache: Optional[Any],
    ) -> Tuple[PackedExpression, RewriteStats]:
        stats = RewriteStats(output=output)

        compiled = self._compiled_for(netlist, compile_cache)
        literal = compiled.net_literal.get(output)
        if literal is None:
            raise _missing_output_error(output)
        node = literal >> 1
        complemented = literal & 1

        flat = compiled.flats.get(node)
        if flat is not None:
            masks = set(flat)
            if complemented:
                masks.symmetric_difference_update((0,))
            self._check_residue(compiled, netlist, output, masks)
            interner = SignalInterner.adopt(
                dict(compiled.leaf_index), list(compiled.leaf_names)
            )
            stats.final_terms = len(masks)
            stats.peak_terms = max(1, len(masks))
            if term_limit is not None and stats.peak_terms > term_limit:
                raise TermLimitExceeded(output, stats.peak_terms, term_limit)
            return PackedExpression(masks, interner), stats

        # Cone-local interning: the shared leaf region plus one slot per
        # opaque node, allocated on first sight (bits stay compact).
        sig_index: Dict[str, int] = dict(compiled.leaf_index)
        sig_names: List[str] = list(compiled.leaf_names)
        index_of_node: Dict[int, int] = {}

        occurs: Dict[int, Set[int]] = {}
        pending: List[Tuple[int, int]] = []
        tracked_mask = 0

        def intern_node(opaque: int) -> int:
            index = index_of_node.get(opaque)
            if index is None:
                index = len(sig_names)
                index_of_node[opaque] = index
                sig_index[f"__aig{opaque}"] = index
                sig_names.append(f"__aig{opaque}")
            return index

        out_index = intern_node(node)
        out_mask = 1 << out_index
        current: Set[int] = {out_mask}
        if complemented:
            current.add(0)
        tracked_mask = out_mask
        occurs[out_index] = {out_mask}
        heappush(pending, (-node, out_index))

        iterations = 0
        touched = 0
        eliminated_total = 0
        peak_terms = max(1, len(current))

        current_add = current.add
        current_remove = current.remove
        current_intersection = current.intersection
        occurs_pop = occurs.pop
        model_of = compiled.model_of
        index_get = index_of_node.get
        leaf_bits = compiled.leaf_bits

        while pending:
            neg_node, var_index = heappop(pending)
            touched += 1
            affected = current_intersection(occurs_pop(var_index))
            if not affected:
                # The variable cancelled away before its node was
                # reached (Algorithm 1 line 4 skip).
                continue
            keep = ~(1 << var_index)

            # Pack the cut model: the flat part is a ready bitmask,
            # opaque nodes intern into cone-local bits (newly tracked
            # variables enter the worklist).
            model: List[int] = []
            for pi_mask, opaque_nodes in model_of(-neg_node):
                mask = pi_mask
                for opaque in opaque_nodes:
                    leaf_bit = leaf_bits.get(opaque)
                    if leaf_bit is not None:
                        mask |= 1 << leaf_bit
                        continue
                    index = index_get(opaque)
                    if index is None:
                        index = intern_node(opaque)
                        tracked_mask |= 1 << index
                        occurs[index] = set()
                        heappush(pending, (-opaque, index))
                    mask |= 1 << index
                model.append(mask)

            eliminated = 0
            for mono in affected:
                current_remove(mono)
                stripped = mono & keep
                for replacement in model:
                    product = stripped | replacement
                    if product in current:
                        current_remove(product)
                        eliminated += 2  # both copies cancelled mod 2
                    else:
                        current_add(product)
                        rest = product & tracked_mask
                        while rest:
                            low = rest & -rest
                            occurs[low.bit_length() - 1].add(product)
                            rest ^= low
            iterations += 1
            eliminated_total += eliminated
            if len(current) > peak_terms:
                peak_terms = len(current)
                if term_limit is not None and peak_terms > term_limit:
                    stats.iterations = iterations
                    stats.cone_gates = touched
                    stats.eliminated_monomials = eliminated_total
                    stats.peak_terms = peak_terms
                    raise TermLimitExceeded(output, peak_terms, term_limit)
            if trace:
                interner = SignalInterner(list(sig_names))
                decoded = Gf2Poly.from_monomials(
                    {interner.unpack(mono) for mono in current}
                )
                stats.trace.append(
                    TraceStep(
                        gate=self._describe_node(compiled, -neg_node),
                        expression=str(decoded),
                        eliminated=f"{eliminated} monomials cancelled",
                    )
                )

        self._check_residue(compiled, netlist, output, current)
        interner = SignalInterner.adopt(sig_index, sig_names)

        stats.iterations = iterations
        stats.cone_gates = touched
        stats.eliminated_monomials = eliminated_total
        stats.peak_terms = peak_terms
        stats.final_terms = len(current)
        return PackedExpression(current, interner), stats
