"""Array-module shim: one fused sweep, numpy or cupy underneath.

The vector engine's fused sweep is written against the array API
surface numpy and cupy share (``zeros``/``lexsort``/``bincount``/
``repeat``/``searchsorted``/broadcast ``|``); what differs between the
two is *around* the kernels — where buffers live, how bytes move to
and from the host, and which dtypes exist.  An :class:`ArrayBackend`
packages exactly those differences:

* ``xp`` — the array module itself (``numpy`` or ``cupy``); every
  kernel call in the sweep goes through it;
* ``asarray``/``to_host`` — the host↔device boundary.  The sweep calls
  ``to_host`` exactly once, at the decode boundary, so device results
  stay on the device for the whole substitution loop;
* ``supports_byte_keys`` — whether the backend can build the
  big-endian ``S{8*words}`` byte-string sort keys the incremental
  merge path uses.  cupy has no fixed-width byte dtype, so the device
  backend always takes the full lexsort (numpy's merge crossover is a
  host-side micro-optimisation anyway — the GPU's radix sort is the
  fast path there);
* ``device_bytes`` — live device-pool usage, for the
  ``sweep.device_bytes`` gauge (``tracemalloc`` cannot see cupy's
  allocations, so telemetry asks the backend).

Availability is reported as a *reason string* (``None`` means usable):
the registry surfaces it verbatim, so ``--engine cuda`` on a host
without cupy fails with "cupy is not installed", not "unknown engine".
"""

from __future__ import annotations

from typing import Any, Callable, Optional

try:  # pragma: no cover - exercised via the no-numpy subprocess test
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Reason the numpy backend is unusable, or ``None`` when it is.
NUMPY_MISSING = (
    "numpy is not installed; use engine='aig' or 'bitpack' instead"
)


class ArrayBackend:
    """One array module plus its host/device boundary behaviour."""

    __slots__ = (
        "name",
        "xp",
        "is_device",
        "supports_byte_keys",
        "_to_host",
        "_device_bytes",
    )

    def __init__(
        self,
        name: str,
        xp: Any,
        *,
        is_device: bool = False,
        supports_byte_keys: bool = True,
        to_host: Optional[Callable[[Any], Any]] = None,
        device_bytes: Optional[Callable[[], int]] = None,
    ) -> None:
        self.name = name
        self.xp = xp
        self.is_device = is_device
        self.supports_byte_keys = supports_byte_keys
        self._to_host = to_host
        self._device_bytes = device_bytes

    def asarray(self, array: Any) -> Any:
        """A backend-native array sharing the host array's contents."""
        return self.xp.asarray(array)

    def to_host(self, array: Any) -> Any:
        """A host (numpy) array with the given array's contents."""
        if self._to_host is None:
            return array
        return self._to_host(array)

    def device_bytes(self) -> Optional[int]:
        """Live device-memory usage, or ``None`` on host backends."""
        if self._device_bytes is None:
            return None
        return self._device_bytes()

    def __repr__(self) -> str:
        return f"ArrayBackend(name={self.name!r})"


def numpy_unavailable_reason() -> Optional[str]:
    """Why the host backend is unusable (``None`` when numpy exists)."""
    return None if _np is not None else NUMPY_MISSING


def numpy_backend() -> ArrayBackend:
    """The host backend (raises ``RuntimeError`` without numpy)."""
    if _np is None:
        raise RuntimeError(NUMPY_MISSING)
    return ArrayBackend("numpy", _np)


#: Memoized cupy probe result: ``(probed, reason)``.  A failed import
#: is not negatively cached by python, so without the memo every
#: ``available_engines()`` call would rescan ``sys.path``.
_CUPY_PROBE: "tuple[bool, Optional[str]]" = (False, None)


def cuda_unavailable_reason() -> Optional[str]:
    """Why the ``cuda`` backend is unusable (``None`` when it works).

    Distinguishes the three actionable failure modes: numpy itself is
    missing (cupy interoperates through it), cupy is not installed,
    and cupy imports but sees no CUDA device.
    """
    global _CUPY_PROBE
    probed, reason = _CUPY_PROBE
    if probed:
        return reason
    reason = _probe_cupy()
    _CUPY_PROBE = (True, reason)
    return reason


def _probe_cupy() -> Optional[str]:
    if _np is None:
        return NUMPY_MISSING
    try:
        import cupy  # noqa: F401
    except ImportError:
        return "cupy is not installed (e.g. pip install cupy-cuda12x)"
    except Exception as error:  # pragma: no cover - broken installs
        return f"cupy failed to import: {error}"
    try:
        count = cupy.cuda.runtime.getDeviceCount()
    except Exception as error:  # pragma: no cover - driver issues
        return f"no usable CUDA runtime: {error}"
    if count < 1:  # pragma: no cover - needs a GPU-less cupy install
        return "cupy imported but no CUDA device is visible"
    return None


def cupy_backend() -> ArrayBackend:  # pragma: no cover - needs a GPU
    """The device backend (raises ``RuntimeError`` with the reason)."""
    reason = cuda_unavailable_reason()
    if reason is not None:
        raise RuntimeError(reason)
    import cupy

    pool = cupy.get_default_memory_pool()
    return ArrayBackend(
        "cupy",
        cupy,
        is_device=True,
        supports_byte_keys=False,
        to_host=cupy.asnumpy,
        device_bytes=pool.used_bytes,
    )
