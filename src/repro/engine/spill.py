"""Out-of-core support for the fused sweep: budgets, spill files, and
the streamed k-way parity merge.

The paper's hard ceiling is memory-out: backward rewriting dies on the
size of the intermediate polynomial, which in fused mode is exactly
one output-tagged uint64 bit-matrix.  This module holds the pieces
that let that matrix outgrow RAM:

* **budget resolution** — ``REPRO_SWEEP_MAX_BYTES`` (with ``K``/``M``/
  ``G`` suffixes) or the ``max_bytes=`` kwarg / ``--max-ram`` flag
  decide when the sweep stops holding the matrix in one array;
* **spill directories** — one private ``repro-sweep-<pid>-<token>``
  directory per sweep (under ``REPRO_SPILL_DIR`` or the system temp
  dir), deleted on success *and* on error; stale directories left by
  killed processes are reaped on the next sweep's startup, so a
  checkpoint-resumed job never inherits dead spill state;
* **row files** — raw little-endian uint64 row-major dumps with the
  (rows, words) shape in the name-side metadata, opened back as
  ``numpy.memmap`` so a chunk loads without a copy;
* **the parity merge** — :func:`merge_parity` generalizes the vector
  engine's sorted-merge cancellation to any number of *streamed* runs:
  each run is sorted and internally duplicate-free (a cancelled
  matrix), and GF(2) addition of all runs is rows of odd multiplicity
  across them.  The merge advances block by block: the emit boundary
  is the smallest of the runs' current block-maximum keys, so every
  key at or below it has all of its occurrences in view, and one
  in-core run-parity cancellation over the boundary slices is exact.
  Associativity of mod-2 addition makes the composition of boundary
  windows exact globally — the same argument that lets the in-core
  sweep cancel substitution products chunk by chunk.

Everything here is host-side by construction (memmaps and byte-string
sort keys are meaningless on a GPU); the ``cuda`` engine documents the
spill path as its fallback when *device* memory is the binding
constraint.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import uuid
from pathlib import Path
from typing import Any, Callable, Iterator, List, Optional, Sequence

try:  # pragma: no cover - exercised via the no-numpy subprocess test
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Environment knob: byte budget of one fused sweep's live matrix.
SWEEP_BUDGET_ENV = "REPRO_SWEEP_MAX_BYTES"
#: Environment knob: where spill directories are created.
SPILL_DIR_ENV = "REPRO_SPILL_DIR"

_SPILL_PREFIX = "repro-sweep-"

_SUFFIXES = {
    "k": 1 << 10,
    "m": 1 << 20,
    "g": 1 << 30,
    "t": 1 << 40,
}


def parse_byte_size(text: str) -> int:
    """``"256M"`` / ``"1g"`` / ``"65536"`` → bytes.

    Accepts an optional single ``K``/``M``/``G``/``T`` suffix (binary
    multiples, case-insensitive, optional trailing ``B``/``iB``).
    """
    cleaned = str(text).strip().lower()
    for tail in ("ib", "b"):
        if cleaned.endswith(tail) and cleaned[: -len(tail)][-1:] in _SUFFIXES:
            cleaned = cleaned[: -len(tail)]
            break
    factor = 1
    if cleaned[-1:] in _SUFFIXES:
        factor = _SUFFIXES[cleaned[-1]]
        cleaned = cleaned[:-1]
    try:
        value = float(cleaned) if "." in cleaned else int(cleaned)
    except ValueError:
        raise ValueError(
            f"cannot parse byte size {text!r} "
            "(expected e.g. 268435456, 256M, 1G)"
        ) from None
    result = int(value * factor)
    if result <= 0:
        raise ValueError(f"byte size must be positive, got {text!r}")
    return result


def resolve_sweep_budget(
    max_bytes: Optional[int] = None,
) -> Optional[int]:
    """The effective sweep byte budget: kwarg, else env, else none."""
    if max_bytes is not None:
        return int(max_bytes)
    configured = os.environ.get(SWEEP_BUDGET_ENV)
    if configured:
        return parse_byte_size(configured)
    return None


def spill_root() -> Path:
    """Where spill directories live (``REPRO_SPILL_DIR`` or tempdir)."""
    configured = os.environ.get(SPILL_DIR_ENV)
    return Path(configured) if configured else Path(tempfile.gettempdir())


def _pid_of(directory_name: str) -> Optional[int]:
    parts = directory_name[len(_SPILL_PREFIX):].split("-", 1)
    try:
        return int(parts[0])
    except (ValueError, IndexError):
        return None


def reap_stale_spills(root: Optional[Path] = None) -> int:
    """Delete spill directories whose owning process is gone.

    Spill directories are normally removed by the sweep that made them
    (success and error paths both); this sweeps up after processes
    that died without unwinding — the OOM-killed runs the checkpoint
    layer is built to resume.  Returns the number of directories
    removed.
    """
    root = spill_root() if root is None else Path(root)
    removed = 0
    try:
        entries = list(root.iterdir())
    except OSError:
        return 0
    for entry in entries:
        if not entry.name.startswith(_SPILL_PREFIX):
            continue
        pid = _pid_of(entry.name)
        if pid is None or pid == os.getpid():
            continue
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            shutil.rmtree(entry, ignore_errors=True)
            removed += 1
        except OSError:
            continue  # alive but not ours (EPERM) — leave it be
    return removed


class SpillDir:
    """One sweep's private spill directory, with guaranteed teardown.

    The name embeds the owning pid so :func:`reap_stale_spills` can
    tell live sweeps from corpses.  ``cleanup()`` is idempotent and
    the sweep calls it in a ``finally`` — a term-limit abort or any
    other raise removes the directory just like success does.
    """

    def __init__(self, root: Optional[Path] = None) -> None:
        base = spill_root() if root is None else Path(root)
        base.mkdir(parents=True, exist_ok=True)
        reap_stale_spills(base)
        self.path = (
            base / f"{_SPILL_PREFIX}{os.getpid()}-{uuid.uuid4().hex[:12]}"
        )
        self.path.mkdir()
        self._sequence = 0

    def next_file(self, kind: str) -> Path:
        """A fresh file path inside the directory."""
        self._sequence += 1
        return self.path / f"{kind}-{self._sequence:06d}.u64"

    def cleanup(self) -> None:
        shutil.rmtree(self.path, ignore_errors=True)


class RowFile:
    """A 2-D uint64 row matrix spilled to one raw file.

    Rows are written little-endian row-major (the in-memory layout of
    a C-contiguous ``uint64`` matrix), so :meth:`open` is a zero-copy
    ``numpy.memmap``.  The writer appends blocks; ``rows``/``words``
    carry the shape, and ``nbytes`` is the budget-accounting size.
    """

    __slots__ = ("path", "rows", "words", "_handle")

    def __init__(self, path: Path, words: int) -> None:
        self.path = Path(path)
        self.words = int(words)
        self.rows = 0
        self._handle = open(self.path, "wb")

    def append(self, block: "Any") -> None:
        """Append a ``(rows, words)`` uint64 block (host array)."""
        if block.shape[1] != self.words:
            raise ValueError(
                f"row width {block.shape[1]} != file width {self.words}"
            )
        data = _np.ascontiguousarray(block, dtype="<u8")
        self._handle.write(data.tobytes())
        self.rows += int(block.shape[0])

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    @property
    def nbytes(self) -> int:
        return self.rows * self.words * 8

    def open(self) -> "Any":
        """The file as a read-only ``(rows, words)`` memmap."""
        self.close()
        if self.rows == 0:
            return _np.zeros((0, self.words), dtype=_np.uint64)
        return _np.memmap(
            self.path,
            dtype="<u8",
            mode="r",
            shape=(self.rows, self.words),
        )

    def delete(self) -> None:
        self.close()
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass


def write_rows(path: Path, rows: "Any") -> RowFile:
    """Spill one in-core matrix to a :class:`RowFile` in one call."""
    spilled = RowFile(path, rows.shape[1])
    spilled.append(rows)
    spilled.close()
    return spilled


#: Rows pulled per run per merge step; bounds merge residency at
#: ``runs * block * row_bytes`` regardless of total spilled size.
MERGE_BLOCK_ROWS = 1 << 14


def merge_parity(
    sources: Sequence["Any"],
    row_keys: Callable[["Any"], "Any"],
    cancel: Callable[["Any"], "Any"],
    block_rows: int = MERGE_BLOCK_ROWS,
) -> Iterator["Any"]:
    """GF(2)-add sorted duplicate-free runs, streaming the result.

    ``sources`` are 2-D uint64 arrays (in-core or memmapped), each in
    the engine's lexsort order with no internal duplicates; the yield
    is the mod-2 sum — rows of odd multiplicity across all runs — in
    the same order, emitted in bounded sorted blocks.

    Per step, one block is read from every unfinished run; the emit
    boundary is the *smallest block-maximum key* — every occurrence of
    a key at or below it is in view (any row beyond a run's block
    compares above that run's block maximum, hence above the
    boundary), so one run-parity ``cancel`` over the boundary slices
    is exact for that key range.  The run owning the minimum always
    advances a full block, so the merge is O(total / block) steps.
    """
    positions = [0] * len(sources)
    totals = [int(source.shape[0]) for source in sources]
    while True:
        blocks: List[Any] = []
        owners: List[int] = []
        for index, source in enumerate(sources):
            position = positions[index]
            if position >= totals[index]:
                continue
            stop = min(position + block_rows, totals[index])
            # memmap slices materialize here: one bounded host copy.
            blocks.append(
                _np.asarray(source[position:stop], dtype=_np.uint64)
            )
            owners.append(index)
        if not blocks:
            return
        boundary = min(row_keys(block[-1:])[0] for block in blocks)
        parts: List[Any] = []
        for block, owner in zip(blocks, owners):
            take = int(
                row_keys(block).searchsorted(boundary, side="right")
            )
            positions[owner] += take
            if take:
                parts.append(block[:take])
        if len(parts) == 1:
            merged = parts[0]  # one run's slice is already cancelled
        else:
            merged = cancel(_np.concatenate(parts))
        if merged.shape[0]:
            yield merged
