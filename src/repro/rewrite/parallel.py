"""Parallel per-output-bit extraction driver.

The paper's headline: an n-bit GF multiplier can be reverse engineered
in n threads, because Theorem 2 makes each output bit's rewriting
independent.  The C++ original uses 16 hardware threads; in CPython
threads cannot speed up this CPU-bound workload, so the driver uses a
``multiprocessing`` pool (fork start method when available, so the
netlist is shared copy-on-write) and falls back to sequential execution
for ``jobs=1`` or tiny netlists.

The result of a run is an :class:`ExtractionRun`: the per-bit canonical
expressions, per-bit :class:`~repro.rewrite.backward.RewriteStats`
(Figure 4 plots the per-bit runtimes), and aggregate wall-clock/peak
statistics in the units of Tables I-IV.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.gf2.polynomial import Gf2Poly
from repro.netlist.netlist import Netlist
from repro.rewrite.backward import RewriteStats, backward_rewrite

# Worker-global netlist, installed once per process by the initializer.
_WORKER_NETLIST: Optional[Netlist] = None
_WORKER_TERM_LIMIT: Optional[int] = None


def _worker_init(netlist: Netlist, term_limit: Optional[int]) -> None:
    global _WORKER_NETLIST, _WORKER_TERM_LIMIT
    _WORKER_NETLIST = netlist
    _WORKER_TERM_LIMIT = term_limit
    # Precompute the topological order once per worker; it is cached on
    # the netlist and shared by every cone extraction.
    netlist.topological_order()


def _worker_rewrite(output: str) -> Tuple[str, Gf2Poly, RewriteStats]:
    assert _WORKER_NETLIST is not None
    poly, stats = backward_rewrite(
        _WORKER_NETLIST, output, term_limit=_WORKER_TERM_LIMIT
    )
    return output, poly, stats


@dataclass
class ExtractionRun:
    """Per-bit expressions and the paper's aggregate metrics."""

    netlist_name: str
    expressions: Dict[str, Gf2Poly]
    stats: Dict[str, RewriteStats]
    jobs: int
    wall_time_s: float
    cpu_time_s: float
    peak_terms: int
    peak_memory_bytes: Optional[int] = None

    def per_bit_runtimes(self) -> List[Tuple[int, float]]:
        """(bit position, runtime) series — the Figure 4 data."""
        series = []
        for output, stats in self.stats.items():
            digits = "".join(ch for ch in output if ch.isdigit())
            position = int(digits) if digits else 0
            series.append((position, stats.runtime_s))
        return sorted(series)

    @property
    def total_iterations(self) -> int:
        return sum(stats.iterations for stats in self.stats.values())


def extract_expressions(
    netlist: Netlist,
    outputs: Optional[List[str]] = None,
    jobs: int = 1,
    term_limit: Optional[int] = None,
    measure_memory: bool = False,
) -> ExtractionRun:
    """Extract the canonical GF(2) expression of every output bit.

    ``jobs`` is the paper's thread count (its experiments use 16);
    ``jobs=0`` means one worker per CPU.  ``term_limit`` bounds the
    intermediate expression size per bit, converting runaway runs into
    :class:`~repro.rewrite.backward.TermLimitExceeded` — the paper's
    "MO" outcome.  ``measure_memory`` additionally tracks the
    ``tracemalloc`` peak (sequential runs only; it measures this
    process).
    """
    chosen = list(outputs) if outputs is not None else list(netlist.outputs)
    if jobs == 0:
        jobs = os.cpu_count() or 1
    jobs = max(1, min(jobs, len(chosen)))

    tracking = measure_memory and jobs == 1
    if tracking:
        tracemalloc.start()
    started_wall = time.perf_counter()
    started_cpu = time.process_time()

    results: List[Tuple[str, Gf2Poly, RewriteStats]] = []
    if jobs == 1:
        netlist.topological_order()
        for output in chosen:
            poly, stats = backward_rewrite(
                netlist, output, term_limit=term_limit
            )
            results.append((output, poly, stats))
    else:
        context = _pool_context()
        with context.Pool(
            processes=jobs,
            initializer=_worker_init,
            initargs=(netlist, term_limit),
        ) as pool:
            results = pool.map(_worker_rewrite, chosen)

    wall = time.perf_counter() - started_wall
    cpu = time.process_time() - started_cpu
    peak_memory = None
    if tracking:
        _, peak_memory = tracemalloc.get_traced_memory()
        tracemalloc.stop()

    expressions = {output: poly for output, poly, _ in results}
    stats = {output: st for output, _, st in results}
    return ExtractionRun(
        netlist_name=netlist.name,
        expressions=expressions,
        stats=stats,
        jobs=jobs,
        wall_time_s=wall,
        cpu_time_s=cpu,
        peak_terms=max((st.peak_terms for st in stats.values()), default=0),
        peak_memory_bytes=peak_memory,
    )


def _pool_context():
    """Prefer fork (copy-on-write netlist sharing) where available."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()
