"""Parallel per-output-bit extraction driver.

The paper's headline: an n-bit GF multiplier can be reverse engineered
in n threads, because Theorem 2 makes each output bit's rewriting
independent.  The C++ original uses 16 hardware threads; in CPython
threads cannot speed up this CPU-bound workload, so the driver uses a
``multiprocessing`` pool (fork start method when available, so the
netlist is shared copy-on-write) and falls back to sequential execution
for ``jobs=1`` or tiny netlists.

The result of a run is an :class:`ExtractionRun`: the per-bit canonical
expressions, per-bit :class:`~repro.rewrite.backward.RewriteStats`
(Figure 4 plots the per-bit runtimes), and aggregate wall-clock/peak
statistics in the units of Tables I-IV.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections.abc import Mapping as MappingABC
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

if TYPE_CHECKING:  # runtime import would cycle through repro.engine
    from repro.engine.base import ConeExpression

from repro import telemetry as _telemetry
from repro.gf2.polynomial import Gf2Poly
from repro.netlist.netlist import Netlist
from repro.rewrite.backward import RewriteStats

# Worker-global netlist, installed once per process by the initializer.
_WORKER_NETLIST: Optional[Netlist] = None
_WORKER_TERM_LIMIT: Optional[int] = None
_WORKER_ENGINE: str = "reference"


def _worker_init(
    netlist: Netlist, term_limit: Optional[int], engine: str
) -> None:
    global _WORKER_NETLIST, _WORKER_TERM_LIMIT, _WORKER_ENGINE
    _WORKER_NETLIST = netlist
    _WORKER_TERM_LIMIT = term_limit
    _WORKER_ENGINE = engine
    # Precompute the topological order once per worker; it is cached on
    # the netlist and shared by every cone extraction.
    netlist.topological_order()


def _worker_rewrite(
    output: str,
) -> Tuple[str, "ConeExpression", RewriteStats]:
    assert _WORKER_NETLIST is not None
    expression, stats = _resolve_engine(_WORKER_ENGINE).rewrite_cone(
        _WORKER_NETLIST, output, term_limit=_WORKER_TERM_LIMIT
    )
    return output, expression, stats


def _resolve_engine(engine):
    """Resolve an engine selector (lazy import to avoid a cycle)."""
    from repro.engine import get_engine

    return get_engine(engine)


class LazyExpressions(MappingABC):
    """Output → :class:`Gf2Poly` map, decoded from backend cones on
    first access.

    This is the decode boundary of the engine architecture: a packed
    backend's expressions stay packed until somebody actually reads
    them as polynomials — extract-only flows (Algorithm 2 membership,
    packed verification) never pay for decoding.
    """

    __slots__ = ("_cones", "_cache")

    def __init__(self, cones: Mapping[str, "ConeExpression"]):
        self._cones = cones
        self._cache: Dict[str, Gf2Poly] = {}

    def __getitem__(self, key: str) -> Gf2Poly:
        poly = self._cache.get(key)
        if poly is None:
            poly = self._cones[key].decode()
            self._cache[key] = poly
        return poly

    def __iter__(self) -> Iterator[str]:
        return iter(self._cones)

    def __len__(self) -> int:
        return len(self._cones)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MappingABC):
            return dict(self.items()) == dict(other.items())
        return NotImplemented

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        return f"LazyExpressions({dict(self.items())!r})"


@dataclass
class ExtractionRun:
    """Per-bit expressions and the paper's aggregate metrics."""

    netlist_name: str
    expressions: Mapping[str, Gf2Poly]
    stats: Dict[str, RewriteStats]
    jobs: int
    wall_time_s: float
    cpu_time_s: float
    peak_terms: int
    peak_memory_bytes: Optional[int] = None
    #: Backend that produced the run (see :mod:`repro.engine`).
    engine: str = "reference"
    #: Backend-native expressions (``ConeExpression`` per output);
    #: Algorithm 2 and the verifier consult these so packed backends
    #: never decode just to answer a membership/equality question.
    cones: Dict[str, "ConeExpression"] = field(default_factory=dict)
    #: Where each bit came from when a cone cache was in play:
    #: ``"cone_hit"`` (served from the per-cone cache), ``"computed"``
    #: (rewritten this run), or ``"checkpoint"`` (resumed by
    #: :mod:`repro.service.jobs`).  Empty when no cone cache was
    #: consulted.
    cache_provenance: Dict[str, str] = field(default_factory=dict)

    def per_bit_runtimes(self) -> List[Tuple[int, float]]:
        """(bit position, runtime) series — the Figure 4 data."""
        series = []
        for output, stats in self.stats.items():
            digits = "".join(ch for ch in output if ch.isdigit())
            position = int(digits) if digits else 0
            series.append((position, stats.runtime_s))
        return sorted(series)

    @property
    def total_iterations(self) -> int:
        return sum(stats.iterations for stats in self.stats.values())


#: Checkpoint hook: called with ``(output, cone, stats)`` as soon as a
#: bit's rewriting completes (in completion order, from the coordinating
#: process).  See :mod:`repro.service.jobs`.
ResultHook = Callable[[str, "ConeExpression", RewriteStats], None]


def extract_expressions(
    netlist: Netlist,
    outputs: Optional[List[str]] = None,
    jobs: int = 1,
    term_limit: Optional[int] = None,
    measure_memory: bool = False,
    engine: str = "reference",
    on_result: Optional[ResultHook] = None,
    compile_cache=None,
    fused: bool = False,
    telemetry: Optional["_telemetry.Telemetry"] = None,
    max_bytes: Optional[int] = None,
    cone_cache=None,
) -> ExtractionRun:
    """Extract the canonical GF(2) expression of every output bit.

    ``jobs`` is the paper's thread count (its experiments use 16);
    ``jobs=0`` means one worker per CPU.  ``term_limit`` bounds the
    intermediate expression size per bit, converting runaway runs into
    :class:`~repro.rewrite.backward.TermLimitExceeded` — the paper's
    "MO" outcome.  ``measure_memory`` additionally tracks the
    ``tracemalloc`` peak (sequential runs only; it measures this
    process).  ``engine`` selects the rewriting backend (see
    :mod:`repro.engine`); results are backend-independent.

    ``on_result`` is the checkpoint hook of :mod:`repro.service.jobs`:
    it fires in the coordinating process the moment each bit finishes
    (completion order, not bit order), so a killed run loses at most
    the bits still in flight.  The returned run is independent of the
    hook and of completion order.

    ``compile_cache`` is the compiled-program hook of
    :mod:`repro.service.cache`: the backend's one-time netlist compile
    is loaded from / stored to the cache *in the coordinating process*
    before any rewriting starts, so a warm cache collapses the cold
    first call to near steady-state — and forked workers inherit the
    prepared program copy-on-write instead of each compiling their
    own.

    ``fused=True`` rewrites every requested cone through the engine's
    multi-root entry point in this process: a backend with a fused
    substitution sweep (the numpy ``vector`` engine) amortizes the
    DAG walk, model lookups and cancellation sorts over all m bits in
    one tagged bit-matrix, while backends without one degrade cleanly
    to their per-bit loop.  ``jobs`` is ignored (the sweep is the
    parallelism); results are bit-identical to a per-bit run, and the
    ``on_result`` hook still fires once per bit — after the sweep, in
    request order.

    ``telemetry`` selects the :class:`repro.telemetry.Telemetry`
    registry this run reports to (default: the active one).  The whole
    run is one ``extract`` span; engine ``compile``/``cone``/``sweep``
    spans nest under it, and ``measure_memory`` rides on the span's
    tracemalloc handling — nested-measurement safe, stopped even when
    a bit raises.

    ``max_bytes`` caps the fused sweep's live bit-matrix (the
    out-of-core tier of the ``vector`` engine; ``--max-ram`` on the
    CLI, ``REPRO_SWEEP_MAX_BYTES`` in the environment).  Per-bit runs
    and backends without a fused matrix ignore it.

    ``cone_cache`` is the incremental-verification hook
    (:class:`repro.service.cache.ResultCache`): before dispatch the
    requested outputs are partitioned by per-cone Merkle digest
    (:func:`repro.service.fingerprint.cone_fingerprints`) into cached
    and dirty sets; only the dirty set is rewritten (the fused sweep
    takes the dirty subset of tags, per-bit jobs skip cached bits),
    cached bits are served under a ``cone.cached`` span, and freshly
    computed cones are stored back.  Theorem 1 makes cone results
    engine-neutral, so any engine serves any engine's entries.  The
    returned run is bit-identical to a cold run and carries per-bit
    :attr:`ExtractionRun.cache_provenance`.
    """
    chosen = list(outputs) if outputs is not None else list(netlist.outputs)
    if fused:
        jobs = 1  # the fused sweep is single-process by construction
    if jobs == 0:
        jobs = os.cpu_count() or 1
    jobs = max(1, min(jobs, len(chosen)))
    backend = _resolve_engine(engine)

    tracking = measure_memory and jobs == 1
    tel = _telemetry.resolve(telemetry)
    results: List[Tuple[str, "ConeExpression", RewriteStats]] = []
    # The span is the timed region: engines deep below resolve the
    # same registry through use(), and the tracemalloc peak rides on
    # the span (nested-measurement safe, stopped even on a raise).
    with _telemetry.use(tel), tel.span(
        "extract",
        memory=tracking,
        netlist=netlist.name,
        engine=backend.name,
        bits=len(chosen),
        jobs=jobs,
        fused=fused,
    ) as span:
        started_cpu = time.process_time()

        # Cone-cache partition: serve every output whose Merkle cone
        # digest already has a stored result, and dispatch only the
        # dirty remainder.  The digest pass is one AIG lowering —
        # orders of magnitude below a rewrite — and it is inside the
        # span, so the warm path's true cost is what the trace shows.
        dirty = chosen
        cone_digests: Optional[Dict[str, str]] = None
        hit_outputs: List[str] = []
        if cone_cache is not None and chosen:
            from repro.engine.reference import ReferenceExpression
            from repro.service.cache import poly_from_json, stats_from_json
            from repro.service.fingerprint import cone_fingerprints

            cone_digests = cone_fingerprints(netlist)
            entries = {}
            for output in chosen:
                digest = cone_digests.get(output)
                if digest is None:
                    continue
                entry = cone_cache.get_cone(digest)
                if entry is not None:
                    entries[output] = entry
            dirty = [o for o in chosen if o not in entries]
            hit_outputs = [o for o in chosen if o in entries]
            if entries:
                with tel.span(
                    "cone.cached",
                    netlist=netlist.name,
                    bits=len(entries),
                ):
                    for output in hit_outputs:
                        entry = entries[output]
                        cone = ReferenceExpression(
                            poly_from_json(entry["expression"])
                        )
                        stats = stats_from_json(entry["stats"])
                        results.append((output, cone, stats))
                        if on_result is not None:
                            on_result(output, cone, stats)
            jobs = max(1, min(jobs, len(dirty)))

        # Backward rewriting of a bit only ever consults its own
        # transitive fan-in (Theorem 2), so when the cache served part
        # of the run the backend is handed just the dirty cones'
        # sub-netlist: a compiling engine then prices the *edit*, not
        # the design — on a single-gate ECO of a NAND-mapped m=64
        # multiplier that is one cone's compile instead of 50k gates.
        work = netlist
        if hit_outputs and dirty:
            work = _restrict_to_cones(netlist, dirty)

        if compile_cache is not None and dirty:
            # Prepare inside the timed region (the compile is part of
            # this run's cost, cached or not) and in the *coordinating*
            # process, so forked workers inherit the program
            # copy-on-write.  A fully cone-cached run skips the
            # compile entirely — that is the warm ECO path.
            backend.prepare(work, compile_cache=compile_cache)

        if not dirty:
            pass  # every requested cone was served from the cache
        elif fused:
            # Forward the budget only when one was given: ad-hoc
            # backends written against the pre-budget rewrite_cones
            # signature keep working.
            extra = (
                {"max_bytes": max_bytes} if max_bytes is not None else {}
            )
            cones_by_output = backend.rewrite_cones(
                work,
                dirty,
                term_limit=term_limit,
                compile_cache=compile_cache,
                **extra,
            )
            for output in dirty:
                expression, stats = cones_by_output[output]
                results.append((output, expression, stats))
                if on_result is not None:
                    on_result(output, expression, stats)
        elif jobs == 1:
            work.topological_order()
            for output in dirty:
                expression, stats = backend.rewrite_cone(
                    work, output, term_limit=term_limit
                )
                results.append((output, expression, stats))
                if on_result is not None:
                    on_result(output, expression, stats)
        else:
            # Workers re-resolve the backend from its registry name, so
            # an injected instance that the registry does not resolve
            # back to would be silently replaced — reject that instead.
            from repro.engine import EngineError, get_engine

            try:
                registered = get_engine(backend.name)
            except EngineError:
                registered = None
            if registered is not backend:
                raise EngineError(
                    f"engine {backend!r} is not resolvable from the "
                    f"registry by name; register_engine() it (or pass "
                    f"the registered name) to use jobs > 1"
                )
            context = _pool_context()
            with context.Pool(
                processes=jobs,
                initializer=_worker_init,
                initargs=(work, term_limit, backend.name),
            ) as pool:
                # Unordered iteration so the checkpoint hook observes
                # each completion as it happens; re-sorted to the
                # requested output order below for deterministic run
                # composition.
                for item in pool.imap_unordered(_worker_rewrite, dirty):
                    results.append(item)
                    if on_result is not None:
                        on_result(*item)

        if compile_cache is not None and dirty:
            # Persist whatever the program accreted during rewriting
            # (lazily built cut models) so the next cold process
            # inherits it.  Pool workers grow their own forked copies,
            # which the coordinator cannot see — only sequential runs
            # re-store.
            backend.finalize(work, compile_cache=compile_cache)

        if cone_cache is not None and cone_digests is not None and dirty:
            # Store back what this run actually rewrote, decoded to
            # the engine-neutral polynomial form (Theorem 1: every
            # backend produces the same canonical expression, so the
            # entry is valid for all of them).
            schema = getattr(backend, "compile_schema", None)
            fresh = set(dirty)
            for output, cone, st in results:
                if output not in fresh:
                    continue
                digest = cone_digests.get(output)
                if digest is None:
                    continue
                cone_cache.put_cone(
                    digest,
                    output,
                    cone.decode(),
                    st,
                    engine=backend.name,
                    compile_schema=schema,
                )

        # Deterministic composition regardless of hit/dirty interleave
        # and pool completion order.
        position = {output: idx for idx, output in enumerate(chosen)}
        results.sort(key=lambda item: position[item[0]])

        wall = span.elapsed()
        cpu = time.process_time() - started_cpu
    peak_memory = span.peak_bytes if tracking else None

    # Decode boundary: the run's expressions read as Gf2Poly but are
    # decoded lazily from the backend-native cones, which Algorithm 2
    # and the verifier consult directly.
    cones = {output: cone for output, cone, _ in results}
    expressions = LazyExpressions(cones)
    stats = {output: st for output, _, st in results}
    hit_set = set(hit_outputs)
    provenance = (
        {
            output: "cone_hit" if output in hit_set else "computed"
            for output, _, _ in results
        }
        if cone_cache is not None
        else {}
    )
    return ExtractionRun(
        netlist_name=netlist.name,
        expressions=expressions,
        stats=stats,
        jobs=jobs,
        wall_time_s=wall,
        cpu_time_s=cpu,
        peak_terms=max((st.peak_terms for st in stats.values()), default=0),
        peak_memory_bytes=peak_memory,
        engine=backend.name,
        cones=cones,
        cache_provenance=provenance,
    )


def _restrict_to_cones(netlist: Netlist, outputs: List[str]) -> Netlist:
    """The union of the given outputs' fan-in cones, as a netlist.

    Theorem 2: a bit's backward rewriting only consults its own
    transitive fan-in, so the canonical expressions extracted from the
    restriction are identical to the full netlist's — but a compiling
    backend now compiles (and a pool now forks) only the dirty slice.
    """
    keep: set = set()
    stack = list(outputs)
    while stack:
        net = stack.pop()
        if net in keep:
            continue
        keep.add(net)
        gate = netlist.driver_of(net)
        if gate is not None:
            stack.extend(gate.inputs)
    sub = Netlist(
        netlist.name,
        [net for net in netlist.inputs if net in keep],
        list(outputs),
    )
    for gate in netlist.gates:
        if gate.output in keep:
            sub.add_gate(gate)
    return sub


def _pool_context():
    """Prefer fork (copy-on-write netlist sharing) where available."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()
