"""Algorithm 1 — backward rewriting of one output bit in GF(2^m).

Starting from ``F0 = z_i`` (the output-bit slice of the output
signature), the engine walks the gates of the output's fan-in cone in
*reverse* topological order and substitutes each gate's output variable
by its algebraic model (Eq. 1).  Monomials with even coefficients are
cancelled at every step — structural in our set-of-monomials
representation — so after the last substitution the polynomial mentions
only primary inputs and is the unique GF(2) function of the output bit
(Theorem 1).

Theorem 2 (parallelizability) is what justifies restricting rewriting
to the cone: cancellations never cross output-bit boundaries, so
rewriting ``z_i`` never needs gates outside its own cone, regardless of
logic sharing between cones.

The engine reports the statistics the paper's evaluation uses: number
of rewriting iterations, peak intermediate term count (the memory
driver in Tables I/II), runtime, and — for Figure 3 — an optional
step-by-step trace with the eliminated monomials.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro import telemetry as _telemetry
from repro.gf2.monomial import Monomial, monomial_str
from repro.gf2.polynomial import Gf2Poly
from repro.netlist.netlist import Netlist
from repro.rewrite.gate_models import gate_model


class BackwardRewriteError(RuntimeError):
    """Rewriting failed structurally (e.g. non-input variable left)."""


class TermLimitExceeded(BackwardRewriteError):
    """The intermediate expression outgrew the configured budget.

    This models the paper's "MO" (memory-out) entry: the GF(2^409)
    Montgomery multiplier exceeded 32 GB during extraction (Table II).
    """

    def __init__(self, output: str, terms: int, limit: int):
        super().__init__(
            f"rewriting {output!r} reached {terms} terms "
            f"(limit {limit}) — memory-out"
        )
        self.output = output
        self.terms = terms
        self.limit = limit

    def __reduce__(self):
        # Exceptions cross process boundaries when a pool worker hits the
        # term limit; without this, unpickling calls the constructor with
        # the formatted message only and the pool deadlocks.
        return (TermLimitExceeded, (self.output, self.terms, self.limit))


@dataclass
class TraceStep:
    """One Figure-3 row: the gate rewritten and the expression after."""

    gate: str
    expression: str
    eliminated: str


@dataclass
class RewriteStats:
    """Metrics of one output bit's rewriting run."""

    output: str
    iterations: int = 0
    cone_gates: int = 0
    peak_terms: int = 0
    final_terms: int = 0
    eliminated_monomials: int = 0
    runtime_s: float = 0.0
    trace: List[TraceStep] = field(default_factory=list)


def backward_rewrite(
    netlist: Netlist,
    output: str,
    trace: bool = False,
    term_limit: Optional[int] = None,
    engine: str = "reference",
    compile_cache=None,
    telemetry=None,
) -> Tuple[Gf2Poly, RewriteStats]:
    """Extract the canonical GF(2) expression of one output bit.

    Returns the polynomial over primary inputs plus rewriting
    statistics.  ``trace=True`` records a Figure-3 style step log
    (keep cones tiny when tracing).  ``term_limit`` aborts with
    :class:`TermLimitExceeded` when the intermediate expression
    explodes, modelling the paper's memory-out condition.  ``engine``
    selects the execution backend (see :mod:`repro.engine`); every
    backend returns identical results.  ``compile_cache`` (a
    :class:`repro.service.cache.ResultCache` or anything with its
    ``get_compiled``/``put_compiled`` contract) lets compiling
    backends persist their one-time per-netlist compile across
    processes; the reference backend has nothing to compile and
    ignores it.  ``telemetry`` selects the
    :class:`repro.telemetry.Telemetry` registry the run's spans land
    in (default: the active one); ``runtime_s`` is the cone span's
    wall time.

    >>> from repro.gen.mastrovito import generate_mastrovito
    >>> net = generate_mastrovito(0b111)       # GF(2^2), x^2+x+1
    >>> poly, stats = backward_rewrite(net, "z1")
    >>> str(poly)
    'a0*b1 + a1*b0 + a1*b1'
    >>> poly == backward_rewrite(net, "z1", engine="bitpack")[0]
    True
    """
    tel = _telemetry.resolve(telemetry)
    if engine not in (None, "reference"):
        from repro.engine import get_engine

        with _telemetry.use(tel):
            return get_engine(engine).rewrite(
                netlist,
                output,
                trace=trace,
                term_limit=term_limit,
                compile_cache=compile_cache,
            )
    with tel.span("cone", engine="reference", output=output) as span:
        stats = RewriteStats(output=output)

        cone = netlist.cone_gates(output)
        stats.cone_gates = len(cone)
        primary_inputs = set(netlist.inputs)

        # F0 = z_i : a single one-variable monomial.
        current: Set[Monomial] = {frozenset({output})}
        stats.peak_terms = 1

        for gate in reversed(cone):
            variable = gate.output
            affected = [mono for mono in current if variable in mono]
            if not affected:
                # The gate drives no remaining variable; Algorithm 1
                # line 4 skips gates whose output is absent from F_i.
                continue
            model = gate_model(gate)
            eliminated = 0
            for mono in affected:
                current.discard(mono)
            for mono in affected:
                stripped = mono - {variable}
                for replacement in model:
                    product = stripped | replacement
                    if product in current:
                        current.discard(product)
                        eliminated += 2  # both copies cancelled mod 2
                    else:
                        current.add(product)
            stats.iterations += 1
            stats.eliminated_monomials += eliminated
            if len(current) > stats.peak_terms:
                stats.peak_terms = len(current)
                if term_limit is not None and stats.peak_terms > term_limit:
                    raise TermLimitExceeded(
                        output, stats.peak_terms, term_limit
                    )
            if trace:
                stats.trace.append(
                    TraceStep(
                        gate=str(gate),
                        expression=str(Gf2Poly.from_monomials(current)),
                        eliminated=f"{eliminated} monomials cancelled",
                    )
                )

        leftovers = {
            name
            for mono in current
            for name in mono
            if name not in primary_inputs
        }
        if leftovers:
            raise BackwardRewriteError(
                f"rewriting {output!r} left non-input variables "
                f"{sorted(leftovers)[:5]} — netlist is not a complete "
                "combinational cone"
            )

        stats.final_terms = len(current)
        span.annotate(
            iterations=stats.iterations, peak_terms=stats.peak_terms
        )
        stats.runtime_s = span.elapsed()
        return Gf2Poly.from_monomials(current), stats


def backward_rewrite_all(
    netlist: Netlist,
    outputs: Optional[List[str]] = None,
    term_limit: Optional[int] = None,
    engine: str = "reference",
) -> Dict[str, Tuple[Gf2Poly, RewriteStats]]:
    """Sequentially rewrite several output bits (see also ``parallel``)."""
    chosen = list(outputs) if outputs is not None else list(netlist.outputs)
    return {
        output: backward_rewrite(
            netlist, output, term_limit=term_limit, engine=engine
        )
        for output in chosen
    }


def backward_rewrite_multi(
    netlist: Netlist,
    outputs: Optional[List[str]] = None,
    term_limit: Optional[int] = None,
    engine: str = "reference",
    compile_cache=None,
    telemetry=None,
) -> Dict[str, Tuple[Gf2Poly, RewriteStats]]:
    """Multi-root Algorithm 1: every requested cone in one engine call.

    This is the decoded face of the engines' multi-root entry point
    (:meth:`repro.engine.base.Engine.rewrite_cones`): a backend with a
    fused substitution sweep (the numpy ``vector`` engine) rewrites
    all cones in one amortized pass over the shared gate DAG, while
    every other backend runs the same per-bit loop
    :func:`backward_rewrite` would — results are bit-identical either
    way (Theorem 1), only statistics and wall-clock differ.

    >>> from repro.gen.mastrovito import generate_mastrovito
    >>> net = generate_mastrovito(0b1011)
    >>> polys = backward_rewrite_multi(net, ["z0", "z1"])
    >>> str(polys["z0"][0])
    'a0*b0 + a1*b2 + a2*b1'
    """
    from repro.engine import get_engine

    chosen = list(outputs) if outputs is not None else list(netlist.outputs)
    with _telemetry.use(_telemetry.resolve(telemetry)):
        cones = get_engine(engine).rewrite_cones(
            netlist, chosen, term_limit=term_limit, compile_cache=compile_cache
        )
    return {
        output: (cone.decode(), stats)
        for output, (cone, stats) in cones.items()
    }


def format_trace(stats: RewriteStats) -> str:
    """Render a recorded trace like Figure 3 of the paper."""
    lines = [f"backward rewriting of {stats.output}:"]
    for idx, step in enumerate(stats.trace):
        lines.append(f"  step {idx + 1}: rewrite {step.gate}")
        lines.append(f"    F = {step.expression}   ({step.eliminated})")
    lines.append(
        f"  done: {stats.iterations} iterations, "
        f"peak {stats.peak_terms} terms, final {stats.final_terms} terms"
    )
    return "\n".join(lines)
