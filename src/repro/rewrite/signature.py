"""Output and input signatures of a GF(2^m) multiplier.

Section III-B: the *output signature* is ``Sig_out = Σ z_i x^i`` and
the *input signature* is the word-level specification expressed per
power of x — for a multiplier built with irreducible polynomial P(x),
the coefficient of ``x^i`` is the canonical GF(2) expression of output
bit ``z_i`` of ``A·B mod P(x)``.

Backward rewriting transforms Sig_out into a polynomial over primary
inputs; verification then checks it equals the input signature.  These
helpers compute the specification side from P(x) — the "golden
implementation constructed using the extracted irreducible polynomial"
of the paper's abstract, in canonical algebraic form.
"""

from __future__ import annotations

from typing import Dict, List

from repro.fieldmath.bitpoly import bitpoly_degree, bitpoly_mod
from repro.gf2.polynomial import Gf2Poly


def output_signature(m: int, prefix: str = "z") -> Dict[int, Gf2Poly]:
    """``Sig_out`` as a map ``degree -> coefficient polynomial``.

    >>> sig = output_signature(2)
    >>> str(sig[1])
    'z1'
    """
    return {i: Gf2Poly.variable(f"{prefix}{i}") for i in range(m)}


def spec_expression(
    modulus: int,
    bit: int,
    a_prefix: str = "a",
    b_prefix: str = "b",
) -> Gf2Poly:
    """Canonical expression of output bit ``z_bit`` of ``A·B mod P``.

    The coefficient of ``x^bit`` after reducing the double product:
    the XOR of every partial product ``a_j·b_k`` whose reduced weight
    ``x^{j+k} mod P(x)`` covers ``x^bit``.

    >>> str(spec_expression(0b111, 0))        # GF(2^2), x^2+x+1
    'a0*b0 + a1*b1'
    """
    m = bitpoly_degree(modulus)
    if not 0 <= bit < m:
        raise ValueError(f"bit {bit} out of range for GF(2^{m})")
    monomials = set()
    for j in range(m):
        for k in range(m):
            if (bitpoly_mod(1 << (j + k), modulus) >> bit) & 1:
                monomials.add(frozenset({f"{a_prefix}{j}", f"{b_prefix}{k}"}))
    return Gf2Poly.from_monomials(monomials)


def spec_expressions(
    modulus: int,
    a_prefix: str = "a",
    b_prefix: str = "b",
) -> List[Gf2Poly]:
    """Specification expressions for all m output bits (the input
    signature, coefficient by coefficient)."""
    m = bitpoly_degree(modulus)
    reduced = [bitpoly_mod(1 << deg, modulus) for deg in range(2 * m - 1)]
    buckets: List[set] = [set() for _ in range(m)]
    for j in range(m):
        for k in range(m):
            row = reduced[j + k]
            mono = frozenset({f"{a_prefix}{j}", f"{b_prefix}{k}"})
            for bit in range(m):
                if (row >> bit) & 1:
                    bucket = buckets[bit]
                    if mono in bucket:
                        bucket.discard(mono)
                    else:
                        bucket.add(mono)
    return [Gf2Poly.from_monomials(bucket) for bucket in buckets]
