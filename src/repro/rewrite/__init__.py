"""Backward rewriting over GF(2^m) — the paper's core engine.

``gate_models``
    the algebraic models of Eq. (1), extended to the complex standard
    cells produced by technology mapping;
``backward``
    Algorithm 1 — per-output-bit backward rewriting with mod-2
    cancellation, statistics (iteration counts, peak term counts,
    per-step timing) and an optional Figure-3 style trace;
``parallel``
    the n-thread driver ("reverse engineer the irreducible polynomial
    of an n-bit GF multiplier in n threads") — a process pool in
    Python, with a sequential fallback;
``signature``
    output/input signatures ``Sig_out = Σ z_i x^i`` and the
    specification expressions of ``A·B mod P(x)`` per output bit.
"""

from repro.rewrite.gate_models import gate_model, gate_model_poly
from repro.rewrite.backward import (
    BackwardRewriteError,
    RewriteStats,
    TermLimitExceeded,
    backward_rewrite,
    backward_rewrite_all,
    backward_rewrite_multi,
)
from repro.rewrite.parallel import extract_expressions
from repro.rewrite.signature import (
    output_signature,
    spec_expression,
    spec_expressions,
)

__all__ = [
    "gate_model",
    "gate_model_poly",
    "BackwardRewriteError",
    "RewriteStats",
    "TermLimitExceeded",
    "backward_rewrite",
    "backward_rewrite_all",
    "backward_rewrite_multi",
    "extract_expressions",
    "output_signature",
    "spec_expression",
    "spec_expressions",
]
