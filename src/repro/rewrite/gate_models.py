"""Algebraic models of logic gates over GF(2) — Eq. (1) of the paper.

The basic models::

    ¬a    = 1 + a
    a ∧ b = a·b
    a ∨ b = a + b + a·b
    a ⊕ b = a + b          (all arithmetic mod 2)

are extended to the n-ary forms and to the complex standard cells
(AOI/OAI/MUX) obtained by synthesis and technology mapping — the paper
explicitly includes those in its circuit model (Section III-A).

Models are computed *generically* by composing the four basic rules
through :class:`~repro.gf2.polynomial.Gf2Poly` arithmetic, so repeated
inputs simplify correctly (``XOR(a, a) = 0``, ``AND(a, a) = a``) and
every model is guaranteed consistent with the Boolean simulation
semantics of :func:`repro.netlist.gate.evaluate_gate` (property-tested).
"""

from __future__ import annotations

from functools import lru_cache
from typing import FrozenSet, Tuple

from repro.gf2.monomial import Monomial
from repro.gf2.polynomial import Gf2Poly
from repro.netlist.gate import Gate, GateType


def _var(name: str) -> Gf2Poly:
    return Gf2Poly.variable(name)


def _and_all(polys) -> Gf2Poly:
    acc = Gf2Poly.one()
    for poly in polys:
        acc = acc * poly
    return acc


def _xor_all(polys) -> Gf2Poly:
    acc = Gf2Poly.zero()
    for poly in polys:
        acc = acc + poly
    return acc


def _or_all(polys) -> Gf2Poly:
    # a ∨ b ∨ ... = 1 + Π(1 + x_i)
    acc = Gf2Poly.one()
    one = Gf2Poly.one()
    for poly in polys:
        acc = acc * (one + poly)
    return Gf2Poly.one() + acc


def gate_model_poly(gtype: GateType, inputs: Tuple[str, ...]) -> Gf2Poly:
    """The GF(2) polynomial implemented by one gate, over its input nets.

    >>> str(gate_model_poly(GateType.OR, ("a", "b")))
    'a*b + a + b'
    >>> str(gate_model_poly(GateType.AOI21, ("a", "b", "c")))
    'a*b*c + a*b + c + 1'
    """
    one = Gf2Poly.one()
    operands = [_var(name) for name in inputs]
    if gtype is GateType.CONST0:
        return Gf2Poly.zero()
    if gtype is GateType.CONST1:
        return one
    if gtype is GateType.BUF:
        return operands[0]
    if gtype is GateType.INV:
        return one + operands[0]
    if gtype is GateType.AND:
        return _and_all(operands)
    if gtype is GateType.NAND:
        return one + _and_all(operands)
    if gtype is GateType.OR:
        return _or_all(operands)
    if gtype is GateType.NOR:
        return one + _or_all(operands)
    if gtype is GateType.XOR:
        return _xor_all(operands)
    if gtype is GateType.XNOR:
        return one + _xor_all(operands)
    if gtype is GateType.AOI21:
        a, b, c = operands
        return one + _or_all([a * b, c])
    if gtype is GateType.AOI22:
        a, b, c, d = operands
        return one + _or_all([a * b, c * d])
    if gtype is GateType.OAI21:
        a, b, c = operands
        return one + _or_all([a, b]) * c
    if gtype is GateType.OAI22:
        a, b, c, d = operands
        return one + _or_all([a, b]) * _or_all([c, d])
    if gtype is GateType.MUX2:
        sel, d1, d0 = operands
        return sel * d1 + (one + sel) * d0
    raise ValueError(f"no algebraic model for gate type {gtype}")


@lru_cache(maxsize=None)
def _cached_model(
    gtype: GateType, inputs: Tuple[str, ...]
) -> FrozenSet[Monomial]:
    return gate_model_poly(gtype, inputs).monomials


def gate_model(gate: Gate) -> FrozenSet[Monomial]:
    """Monomial set of a gate's model (cached; the engine's hot path)."""
    return _cached_model(gate.gtype, gate.inputs)
