"""The :class:`Netlist` container.

A netlist is a DAG of :class:`~repro.netlist.gate.Gate` cells between
declared primary inputs and primary outputs.  The operations the rest
of the system relies on:

* **validation** — single driver per net, no undriven non-PI nets, no
  combinational cycles;
* **topological order** — Algorithm 1 rewrites "in a topological order
  of the netlist" (backwards);
* **cone extraction** — Theorem 2 lets each output bit be processed in
  its own transitive fan-in cone, which is what makes the method
  parallel and memory-friendly;
* **bit-parallel simulation** — the ground truth the generators and the
  extraction verifier are tested against;
* **statistics** — the paper's ``# eqns`` column is the gate count.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set

from repro.netlist.gate import Gate, GateType, evaluate_gate


class NetlistError(ValueError):
    """Structural problem in a netlist (multi-driver, cycle, ...)."""


@dataclass
class NetlistStats:
    """Summary statistics in the units the paper reports."""

    num_gates: int
    num_inputs: int
    num_outputs: int
    depth: int
    gate_counts: Dict[str, int]

    @property
    def num_equations(self) -> int:
        """Alias: the paper's '# eqns' column is the gate count."""
        return self.num_gates

    def __str__(self) -> str:
        counts = ", ".join(
            f"{name}:{count}" for name, count in sorted(self.gate_counts.items())
        )
        return (
            f"gates={self.num_gates} inputs={self.num_inputs} "
            f"outputs={self.num_outputs} depth={self.depth} [{counts}]"
        )


class Netlist:
    """A combinational gate-level netlist.

    >>> net = Netlist("half_adder", inputs=["a", "b"], outputs=["s", "c"])
    >>> net.add_gate(Gate("s", GateType.XOR, ("a", "b")))
    >>> net.add_gate(Gate("c", GateType.AND, ("a", "b")))
    >>> net.simulate({"a": 1, "b": 1})
    {'s': 0, 'c': 1}
    """

    def __init__(
        self,
        name: str,
        inputs: Sequence[str] = (),
        outputs: Sequence[str] = (),
    ):
        self.name = name
        self.inputs: List[str] = list(inputs)
        self.outputs: List[str] = list(outputs)
        self._gates: List[Gate] = []
        self._driver: Dict[str, Gate] = {}
        self._topo_cache: Optional[List[Gate]] = None
        self._topo_pos_cache: Optional[Dict[str, int]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_gate(self, gate: Gate) -> None:
        """Append a gate; rejects double-driven nets immediately."""
        if gate.output in self._driver:
            raise NetlistError(f"net {gate.output!r} has multiple drivers")
        if gate.output in self.inputs:
            raise NetlistError(f"primary input {gate.output!r} cannot be driven")
        self._driver[gate.output] = gate
        self._gates.append(gate)
        self._topo_cache = None
        self._topo_pos_cache = None

    def add_input(self, name: str) -> None:
        if name in self._driver:
            raise NetlistError(f"net {name!r} is already driven by a gate")
        if name not in self.inputs:
            self.inputs.append(name)

    def add_output(self, name: str) -> None:
        if name not in self.outputs:
            self.outputs.append(name)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def gates(self) -> List[Gate]:
        """Gates in insertion order (not necessarily topological)."""
        return list(self._gates)

    def __len__(self) -> int:
        return len(self._gates)

    def driver_of(self, net: str) -> Optional[Gate]:
        """The gate driving ``net``, or ``None`` for PIs/undriven nets."""
        return self._driver.get(net)

    def nets(self) -> Set[str]:
        """Every net name mentioned anywhere in the netlist."""
        out: Set[str] = set(self.inputs) | set(self.outputs)
        for gate in self._gates:
            out.add(gate.output)
            out.update(gate.inputs)
        return out

    def fanout_map(self) -> Dict[str, List[Gate]]:
        """Map net -> gates that read it."""
        fanout: Dict[str, List[Gate]] = {}
        for gate in self._gates:
            for net in gate.inputs:
                fanout.setdefault(net, []).append(gate)
        return fanout

    def validate(self) -> None:
        """Raise :class:`NetlistError` on any structural defect."""
        driven = set(self._driver)
        available = driven | set(self.inputs)
        for gate in self._gates:
            for net in gate.inputs:
                if net not in available:
                    raise NetlistError(
                        f"gate {gate.output!r} reads undriven net {net!r}"
                    )
        for net in self.outputs:
            if net not in available:
                raise NetlistError(f"primary output {net!r} is undriven")
        self.topological_order()  # raises on cycles

    # ------------------------------------------------------------------
    # Ordering and cones
    # ------------------------------------------------------------------

    def topological_order(self) -> List[Gate]:
        """Gates ordered so every gate follows all its input drivers.

        Kahn's algorithm; raises :class:`NetlistError` on combinational
        cycles.  The result is cached until the netlist changes.
        """
        if self._topo_cache is not None:
            return self._topo_cache
        indegree: Dict[str, int] = {}
        for gate in self._gates:
            indegree[gate.output] = sum(
                1 for net in gate.inputs if net in self._driver
            )
        ready = deque(
            gate for gate in self._gates if indegree[gate.output] == 0
        )
        fanout = self.fanout_map()
        order: List[Gate] = []
        while ready:
            gate = ready.popleft()
            order.append(gate)
            for consumer in fanout.get(gate.output, ()):
                indegree[consumer.output] -= 1
                if indegree[consumer.output] == 0:
                    ready.append(consumer)
        if len(order) != len(self._gates):
            stuck = sorted(
                out for out, deg in indegree.items() if deg > 0
            )
            raise NetlistError(
                f"combinational cycle involving nets {stuck[:5]}"
            )
        self._topo_cache = order
        return order

    def topological_positions(self) -> Dict[str, int]:
        """Map gate-output net → its index in :meth:`topological_order`.

        Cached like the order itself.  Per-cone engines use this to
        schedule backward rewriting by topological position without
        rescanning the gate list for every output bit.
        """
        if self._topo_pos_cache is None:
            self._topo_pos_cache = {
                gate.output: position
                for position, gate in enumerate(self.topological_order())
            }
        return self._topo_pos_cache

    def cone(self, output: str) -> "Netlist":
        """Transitive fan-in cone of one net, as a standalone netlist.

        The cone's inputs are exactly the primary inputs it reaches;
        its single output is ``output``.  Theorem 2 guarantees the
        backward rewriting of output bit ``z_i`` only ever needs this
        sub-netlist.
        """
        if output not in self._driver and output not in self.inputs:
            raise NetlistError(f"unknown net {output!r}")
        keep: Set[str] = set()
        stack = [output]
        while stack:
            net = stack.pop()
            if net in keep:
                continue
            keep.add(net)
            gate = self._driver.get(net)
            if gate is not None:
                stack.extend(gate.inputs)
        cone_inputs = [net for net in self.inputs if net in keep]
        sub = Netlist(f"{self.name}.{output}", cone_inputs, [output])
        for gate in self._gates:
            if gate.output in keep:
                sub.add_gate(gate)
        return sub

    def cone_gates(self, output: str) -> List[Gate]:
        """Gates of the fan-in cone of ``output`` in topological order."""
        keep: Set[str] = set()
        stack = [output]
        while stack:
            net = stack.pop()
            if net in keep:
                continue
            keep.add(net)
            gate = self._driver.get(net)
            if gate is not None:
                stack.extend(gate.inputs)
        return [gate for gate in self.topological_order() if gate.output in keep]

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def simulate(
        self, assignment: Mapping[str, int], width: int = 1
    ) -> Dict[str, int]:
        """Bit-parallel simulation.

        ``assignment`` maps every primary input to an int whose low
        ``width`` bits are independent simulation lanes.  Returns the
        primary output values (same packing).
        """
        mask = (1 << width) - 1
        values: Dict[str, int] = {}
        for net in self.inputs:
            try:
                values[net] = assignment[net] & mask
            except KeyError:
                raise NetlistError(f"missing value for input {net!r}") from None
        for gate in self.topological_order():
            operands = [values[net] for net in gate.inputs]
            values[gate.output] = evaluate_gate(gate.gtype, operands, mask)
        missing = [net for net in self.outputs if net not in values]
        if missing:
            raise NetlistError(f"outputs {missing} were never computed")
        return {net: values[net] for net in self.outputs}

    def simulate_all_nets(
        self, assignment: Mapping[str, int], width: int = 1
    ) -> Dict[str, int]:
        """Like :meth:`simulate` but returns every internal net too."""
        mask = (1 << width) - 1
        values: Dict[str, int] = {
            net: assignment[net] & mask for net in self.inputs
        }
        for gate in self.topological_order():
            operands = [values[net] for net in gate.inputs]
            values[gate.output] = evaluate_gate(gate.gtype, operands, mask)
        return values

    # ------------------------------------------------------------------
    # Statistics / copying
    # ------------------------------------------------------------------

    def stats(self) -> NetlistStats:
        """Gate counts, logic depth, and the paper's '# eqns' metric."""
        counts: Dict[str, int] = {}
        for gate in self._gates:
            counts[gate.gtype.value] = counts.get(gate.gtype.value, 0) + 1
        depth: Dict[str, int] = {net: 0 for net in self.inputs}
        max_depth = 0
        for gate in self.topological_order():
            level = 1 + max(
                (depth.get(net, 0) for net in gate.inputs), default=0
            )
            depth[gate.output] = level
            max_depth = max(max_depth, level)
        return NetlistStats(
            num_gates=len(self._gates),
            num_inputs=len(self.inputs),
            num_outputs=len(self.outputs),
            depth=max_depth,
            gate_counts=counts,
        )

    def copy(self, name: Optional[str] = None) -> "Netlist":
        """Shallow-ish copy (gates are immutable and shared)."""
        dup = Netlist(name or self.name, self.inputs, self.outputs)
        for gate in self._gates:
            dup.add_gate(gate)
        return dup

    def __repr__(self) -> str:
        return (
            f"Netlist({self.name!r}, {len(self.inputs)} in, "
            f"{len(self.outputs)} out, {len(self._gates)} gates)"
        )
