"""BLIF (Berkeley Logic Interchange Format) subset.

Covers the combinational core of BLIF: ``.model``, ``.inputs``,
``.outputs``, ``.names`` with single-output covers, ``.end``.  This is
the interchange format ABC uses, so the synthesized-multiplier
experiments (Table III) can export/import circuits the same way the
paper's flow did.

Writing maps each gate to a canonical SOP cover.  Reading recognises
any single-output cover and classifies it back onto the cell library by
truth-table matching (covers up to 6 inputs); unrecognised functions
are rejected rather than silently mangled.
"""

from __future__ import annotations

import os
from itertools import product as _iter_product
from typing import Dict, List, Sequence, TextIO, Tuple, Union

from repro.ioutil import atomic_write_text
from repro.netlist.gate import Gate, GateType, evaluate_gate, gate_arity
from repro.netlist.netlist import Netlist, NetlistError

PathOrFile = Union[str, os.PathLike, TextIO]


class BlifFormatError(NetlistError):
    """Malformed BLIF input or unsupported construct."""


# ----------------------------------------------------------------------
# Writing
# ----------------------------------------------------------------------

def _gate_cover(gate: Gate) -> List[str]:
    """SOP cover lines (inputs pattern + ' 1') for one gate."""
    n = len(gate.inputs)
    gtype = gate.gtype
    if gtype is GateType.CONST0:
        return []
    if gtype is GateType.CONST1:
        return ["1"]
    if gtype is GateType.BUF:
        return ["1 1"]
    if gtype is GateType.INV:
        return ["0 1"]
    if gtype is GateType.AND:
        return ["1" * n + " 1"]
    if gtype is GateType.NAND:
        return ["".join("0" if j == i else "-" for j in range(n)) + " 1"
                for i in range(n)]
    if gtype is GateType.OR:
        return ["".join("1" if j == i else "-" for j in range(n)) + " 1"
                for i in range(n)]
    if gtype is GateType.NOR:
        return ["0" * n + " 1"]
    # XOR/XNOR/AOI/OAI/MUX: enumerate minterms (arity is small).
    lines = []
    for bits in _iter_product((0, 1), repeat=n):
        value = evaluate_gate(gtype, list(bits), mask=1)
        if value:
            lines.append("".join(str(b) for b in bits) + " 1")
    return lines


def format_blif(netlist: Netlist) -> str:
    """Render a netlist as BLIF text."""
    lines = [f".model {netlist.name}"]
    lines.append(".inputs " + " ".join(netlist.inputs))
    lines.append(".outputs " + " ".join(netlist.outputs))
    for gate in netlist.topological_order():
        signals = " ".join(list(gate.inputs) + [gate.output])
        lines.append(f".names {signals}")
        lines.extend(_gate_cover(gate))
    lines.append(".end")
    return "\n".join(lines) + "\n"


def write_blif(netlist: Netlist, target: PathOrFile) -> None:
    """Write BLIF to a path (atomically) or open file."""
    text = format_blif(netlist)
    if hasattr(target, "write"):
        target.write(text)
    else:
        atomic_write_text(target, text)


# ----------------------------------------------------------------------
# Reading
# ----------------------------------------------------------------------

def _truth_table_from_cover(
    cover: Sequence[str], num_inputs: int
) -> Tuple[int, ...]:
    """Evaluate an SOP cover into a dense truth table."""
    table = []
    for bits in _iter_product((0, 1), repeat=num_inputs):
        value = 0
        for line in cover:
            pattern, out = line.rsplit(None, 1) if " " in line else ("", line)
            if out != "1":
                raise BlifFormatError("only on-set covers are supported")
            pattern = pattern.replace(" ", "")
            if len(pattern) != num_inputs:
                raise BlifFormatError(
                    f"cover row {line!r} does not match {num_inputs} inputs"
                )
            if all(p == "-" or int(p) == b for p, b in zip(pattern, bits)):
                value = 1
                break
        table.append(value)
    return tuple(table)


def _classify_gate(
    inputs: Tuple[str, ...], cover: Sequence[str]
) -> Tuple[GateType, Tuple[str, ...]]:
    """Match a cover against the cell library by truth table."""
    n = len(inputs)
    if n == 0:
        if not cover:
            return GateType.CONST0, ()
        if all(line.strip() == "1" for line in cover):
            return GateType.CONST1, ()
        raise BlifFormatError(f"unrecognised constant cover {cover!r}")
    if n > 6:
        raise BlifFormatError(f"cover with {n} inputs is not classifiable")
    table = _truth_table_from_cover(cover, n)
    for gtype in GateType:
        fixed = gate_arity(gtype)
        if fixed is not None and fixed != n:
            continue
        if fixed is None and n < 2:
            continue
        expected = tuple(
            evaluate_gate(gtype, list(bits), mask=1)
            for bits in _iter_product((0, 1), repeat=n)
        )
        if expected == table:
            return gtype, inputs
    raise BlifFormatError(
        f"cover over {inputs} does not match any library cell"
    )


def parse_blif(text: str) -> Netlist:
    """Parse BLIF text into a :class:`Netlist`."""
    # Join continuation lines first.
    logical: List[str] = []
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].rstrip()
        if not line.strip():
            continue
        if logical and logical[-1].endswith("\\"):
            logical[-1] = logical[-1][:-1] + " " + line.strip()
        else:
            logical.append(line)
    while logical and logical[-1].endswith("\\"):
        logical[-1] = logical[-1][:-1]

    netlist = Netlist("blif")
    pending: Tuple[Tuple[str, ...], str] | None = None
    cover: List[str] = []

    def flush() -> None:
        nonlocal pending, cover
        if pending is None:
            return
        inputs, output = pending
        gtype, ordered = _classify_gate(inputs, cover)
        netlist.add_gate(Gate(output, gtype, ordered))
        pending, cover = None, []

    for line in logical:
        stripped = line.strip()
        if stripped.startswith("."):
            parts = stripped.split()
            directive = parts[0]
            if directive == ".model":
                flush()
                netlist.name = parts[1] if len(parts) > 1 else "blif"
            elif directive == ".inputs":
                flush()
                for net in parts[1:]:
                    netlist.add_input(net)
            elif directive == ".outputs":
                flush()
                for net in parts[1:]:
                    netlist.add_output(net)
            elif directive == ".names":
                flush()
                if len(parts) < 2:
                    raise BlifFormatError(f"bad .names line {line!r}")
                pending = (tuple(parts[1:-1]), parts[-1])
            elif directive == ".end":
                flush()
            else:
                raise BlifFormatError(f"unsupported directive {directive!r}")
        else:
            if pending is None:
                raise BlifFormatError(f"cover row outside .names: {line!r}")
            cover.append(stripped)
    flush()
    netlist.validate()
    return netlist


def read_blif(source: PathOrFile) -> Netlist:
    """Read BLIF from a path or open file."""
    if hasattr(source, "read"):
        return parse_blif(source.read())
    with open(source, "r", encoding="utf-8") as handle:
        return parse_blif(handle.read())
