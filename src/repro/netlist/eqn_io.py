"""The equations netlist format (``.eqn``).

This is the working format of the reproduction — one gate equation per
line, in exactly the granularity the paper counts in its "# eqns"
columns.  It is trivially diffable and easy to generate from other
tools.

Grammar::

    # comment                          (also //)
    INPUT  a0 a1 b0 b1
    OUTPUT z0 z1
    n1 = AND(a0, b0)
    n2 = XOR(n1, n3)
    z0 = INV(n2)

Gate names are the :class:`~repro.netlist.gate.GateType` values;
declarations may repeat and may appear anywhere before use.
"""

from __future__ import annotations

import io
import os
from typing import Iterable, List, TextIO, Union

from repro.ioutil import atomic_write_text
from repro.netlist.gate import Gate, GateType
from repro.netlist.netlist import Netlist, NetlistError

PathOrFile = Union[str, os.PathLike, TextIO]


class EqnFormatError(NetlistError):
    """Malformed ``.eqn`` input."""


def format_eqn(netlist: Netlist) -> str:
    """Render a netlist to the equations format.

    Gates are written in topological order, so the output doubles as a
    valid evaluation schedule.
    """
    out = io.StringIO()
    out.write(f"# netlist {netlist.name}\n")
    out.write(f"# gates {len(netlist)}\n")
    _write_decl(out, "INPUT", netlist.inputs)
    _write_decl(out, "OUTPUT", netlist.outputs)
    for gate in netlist.topological_order():
        args = ", ".join(gate.inputs)
        out.write(f"{gate.output} = {gate.gtype.value}({args})\n")
    return out.getvalue()


def _write_decl(out: TextIO, keyword: str, names: List[str]) -> None:
    """Write INPUT/OUTPUT declarations, wrapped to readable width."""
    for start in range(0, len(names), 16):
        chunk = " ".join(names[start : start + 16])
        if chunk:
            out.write(f"{keyword} {chunk}\n")


def parse_eqn(text: str, name: str = "netlist") -> Netlist:
    """Parse equations-format text into a :class:`Netlist`.

    >>> net = parse_eqn('''
    ... INPUT a b
    ... OUTPUT z
    ... z = XOR(a, b)
    ... ''')
    >>> net.simulate({"a": 1, "b": 0})
    {'z': 1}
    """
    netlist = Netlist(name)
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].split("//", 1)[0].strip()
        if not line:
            continue
        upper = line.split(None, 1)
        keyword = upper[0].upper()
        if keyword == "INPUT":
            for net in (upper[1].replace(",", " ").split() if len(upper) > 1 else []):
                netlist.add_input(net)
            continue
        if keyword == "OUTPUT":
            for net in (upper[1].replace(",", " ").split() if len(upper) > 1 else []):
                netlist.add_output(net)
            continue
        netlist.add_gate(_parse_gate_line(line, lineno))
    netlist.validate()
    return netlist


def _parse_gate_line(line: str, lineno: int) -> Gate:
    if "=" not in line:
        raise EqnFormatError(f"line {lineno}: expected '=' in {line!r}")
    lhs, rhs = (part.strip() for part in line.split("=", 1))
    if not lhs or " " in lhs:
        raise EqnFormatError(f"line {lineno}: bad output net {lhs!r}")
    open_paren = rhs.find("(")
    if open_paren < 0 or not rhs.endswith(")"):
        raise EqnFormatError(f"line {lineno}: expected GATE(...) in {rhs!r}")
    type_name = rhs[:open_paren].strip().upper()
    try:
        gtype = GateType(type_name)
    except ValueError:
        raise EqnFormatError(
            f"line {lineno}: unknown gate type {type_name!r}"
        ) from None
    arg_text = rhs[open_paren + 1 : -1].strip()
    args = tuple(
        arg.strip() for arg in arg_text.split(",") if arg.strip()
    ) if arg_text else ()
    try:
        return Gate(lhs, gtype, args)
    except ValueError as exc:
        raise EqnFormatError(f"line {lineno}: {exc}") from exc


def write_eqn(netlist: Netlist, target: PathOrFile) -> None:
    """Write the equations format to a path (atomically) or open file."""
    text = format_eqn(netlist)
    if hasattr(target, "write"):
        target.write(text)
    else:
        atomic_write_text(target, text)


def read_eqn(source: PathOrFile, name: str | None = None) -> Netlist:
    """Read the equations format from a path or open file."""
    if hasattr(source, "read"):
        text = source.read()
        return parse_eqn(text, name or "netlist")
    with open(source, "r", encoding="utf-8") as handle:
        text = handle.read()
    default = os.path.splitext(os.path.basename(os.fspath(source)))[0]
    return parse_eqn(text, name or default)
