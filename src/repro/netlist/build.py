""":class:`NetlistBuilder` — the emission layer for generators and synthesis.

The multiplier generators and the synthesis passes all want the same
conveniences when producing gates:

* fresh internal net names (``n1, n2, ...``) without bookkeeping;
* n-ary XOR/AND trees built either as *chains* (the shape a naive HDL
  elaboration produces) or *balanced* trees (what a synthesis tool
  produces);
* optional **structural hashing**: emitting the same gate twice returns
  the existing net instead of duplicating logic;
* constant folding at the emission boundary (ANDing with 0, XORing
  with 0, ...), so generators never emit degenerate gates.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.netlist.gate import COMMUTATIVE_TYPES, Gate, GateType
from repro.netlist.netlist import Netlist, NetlistError

#: Net name the builder uses for the constant-0/1 cells when needed.
CONST0_NET = "const0"
CONST1_NET = "const1"


class NetlistBuilder:
    """Incrementally build a :class:`Netlist`.

    >>> builder = NetlistBuilder("demo", inputs=["a", "b", "c"])
    >>> s = builder.xor_tree(["a", "b", "c"])
    >>> builder.set_outputs([s])
    >>> net = builder.finish()
    >>> net.simulate({"a": 1, "b": 1, "c": 1})[s]
    1
    """

    def __init__(
        self,
        name: str,
        inputs: Sequence[str] = (),
        prefix: str = "n",
        strash: bool = False,
        balanced_trees: bool = True,
    ):
        self._netlist = Netlist(name, inputs=list(inputs))
        self._prefix = prefix
        self._counter = 0
        self._strash = strash
        self._cache: Dict[Tuple, str] = {}
        self._balanced = balanced_trees
        self._const_nets: Dict[GateType, str] = {}

    # ------------------------------------------------------------------
    # Net management
    # ------------------------------------------------------------------

    def fresh_net(self, hint: Optional[str] = None) -> str:
        """A new, unused net name."""
        while True:
            self._counter += 1
            name = f"{hint or self._prefix}{self._counter}"
            if self._netlist.driver_of(name) is None and (
                name not in self._netlist.inputs
            ):
                return name

    def add_input(self, name: str) -> str:
        self._netlist.add_input(name)
        return name

    def set_outputs(self, names: Sequence[str]) -> None:
        for name in names:
            self._netlist.add_output(name)

    # ------------------------------------------------------------------
    # Gate emission
    # ------------------------------------------------------------------

    def emit(
        self,
        gtype: GateType,
        inputs: Sequence[str],
        output: Optional[str] = None,
    ) -> str:
        """Emit one gate, returning the output net.

        With structural hashing enabled, a commutative gate with the
        same input set (or any gate with the same input tuple) returns
        the previously created net — unless a specific ``output`` name
        is requested.
        """
        inputs = tuple(inputs)
        if self._strash and output is None:
            key = self._strash_key(gtype, inputs)
            cached = self._cache.get(key)
            if cached is not None:
                return cached
        out = output or self.fresh_net()
        self._netlist.add_gate(Gate(out, gtype, inputs))
        if self._strash and output is None:
            self._cache[self._strash_key(gtype, inputs)] = out
        return out

    def _strash_key(self, gtype: GateType, inputs: Tuple[str, ...]) -> Tuple:
        if gtype in COMMUTATIVE_TYPES:
            return (gtype, tuple(sorted(inputs)))
        return (gtype, inputs)

    # Convenience wrappers -------------------------------------------------

    def const0(self) -> str:
        """The constant-0 net (one CONST0 cell, shared)."""
        if GateType.CONST0 not in self._const_nets:
            self._const_nets[GateType.CONST0] = self.emit(
                GateType.CONST0, (), output=self.fresh_net(CONST0_NET)
            )
        return self._const_nets[GateType.CONST0]

    def const1(self) -> str:
        """The constant-1 net (one CONST1 cell, shared)."""
        if GateType.CONST1 not in self._const_nets:
            self._const_nets[GateType.CONST1] = self.emit(
                GateType.CONST1, (), output=self.fresh_net(CONST1_NET)
            )
        return self._const_nets[GateType.CONST1]

    def buf(self, src: str, output: Optional[str] = None) -> str:
        return self.emit(GateType.BUF, (src,), output)

    def inv(self, src: str, output: Optional[str] = None) -> str:
        return self.emit(GateType.INV, (src,), output)

    def and2(self, a: str, b: str, output: Optional[str] = None) -> str:
        return self.emit(GateType.AND, (a, b), output)

    def or2(self, a: str, b: str, output: Optional[str] = None) -> str:
        return self.emit(GateType.OR, (a, b), output)

    def xor2(self, a: str, b: str, output: Optional[str] = None) -> str:
        return self.emit(GateType.XOR, (a, b), output)

    def nand2(self, a: str, b: str, output: Optional[str] = None) -> str:
        return self.emit(GateType.NAND, (a, b), output)

    def nor2(self, a: str, b: str, output: Optional[str] = None) -> str:
        return self.emit(GateType.NOR, (a, b), output)

    def xnor2(self, a: str, b: str, output: Optional[str] = None) -> str:
        return self.emit(GateType.XNOR, (a, b), output)

    def mux2(
        self, sel: str, d1: str, d0: str, output: Optional[str] = None
    ) -> str:
        return self.emit(GateType.MUX2, (sel, d1, d0), output)

    # Trees ---------------------------------------------------------------

    def xor_tree(
        self, nets: Sequence[str], output: Optional[str] = None
    ) -> str:
        """XOR of any number of nets (0 -> const0, 1 -> buf/alias)."""
        return self._tree(GateType.XOR, nets, output, identity=self.const0)

    def and_tree(
        self, nets: Sequence[str], output: Optional[str] = None
    ) -> str:
        """AND of any number of nets (0 -> const1, 1 -> buf/alias)."""
        return self._tree(GateType.AND, nets, output, identity=self.const1)

    def or_tree(
        self, nets: Sequence[str], output: Optional[str] = None
    ) -> str:
        """OR of any number of nets (0 -> const0, 1 -> buf/alias)."""
        return self._tree(GateType.OR, nets, output, identity=self.const0)

    def _tree(
        self,
        gtype: GateType,
        nets: Sequence[str],
        output: Optional[str],
        identity,
    ) -> str:
        nets = list(nets)
        if not nets:
            source = identity()
            return self.buf(source, output) if output else source
        if len(nets) == 1:
            if output is None:
                return nets[0]
            return self.buf(nets[0], output)
        if self._balanced:
            while len(nets) > 2:
                paired = []
                for idx in range(0, len(nets) - 1, 2):
                    paired.append(self.emit(gtype, (nets[idx], nets[idx + 1])))
                if len(nets) % 2:
                    paired.append(nets[-1])
                nets = paired
            return self.emit(gtype, (nets[0], nets[1]), output)
        acc = nets[0]
        for net in nets[1:-1]:
            acc = self.emit(gtype, (acc, net))
        return self.emit(gtype, (acc, nets[-1]), output)

    # ------------------------------------------------------------------
    # Finalisation
    # ------------------------------------------------------------------

    @property
    def netlist(self) -> Netlist:
        """The netlist under construction (live reference)."""
        return self._netlist

    def finish(self, validate: bool = True) -> Netlist:
        """Return the completed netlist, validating by default."""
        if not self._netlist.outputs:
            raise NetlistError("netlist has no outputs")
        if validate:
            self._netlist.validate()
        return self._netlist
