"""Structural Verilog writer and reader (gate-primitive subset).

The writer emits one module using Verilog's built-in gate primitives
(``and``, ``or``, ``xor``, ``nand``, ``nor``, ``xnor``, ``not``,
``buf``) plus ``assign`` statements for the complex cells (AOI/OAI/MUX)
— the dialect any EDA tool accepts.

The reader parses the same subset back: module header, ``input`` /
``output`` / ``wire`` declarations, primitive instantiations, and the
specific ``assign`` shapes the writer produces.  It is not a general
Verilog front end; anything else raises :class:`VerilogFormatError`.
"""

from __future__ import annotations

import os
import re
from typing import Dict, List, TextIO, Tuple, Union

from repro.ioutil import atomic_write_text
from repro.netlist.gate import Gate, GateType
from repro.netlist.netlist import Netlist, NetlistError

PathOrFile = Union[str, os.PathLike, TextIO]


class VerilogFormatError(NetlistError):
    """Malformed or unsupported Verilog input."""


_PRIMITIVE_OF = {
    GateType.AND: "and",
    GateType.OR: "or",
    GateType.XOR: "xor",
    GateType.NAND: "nand",
    GateType.NOR: "nor",
    GateType.XNOR: "xnor",
    GateType.INV: "not",
    GateType.BUF: "buf",
}

_TYPE_OF_PRIMITIVE = {v: k for k, v in _PRIMITIVE_OF.items()}


def _escape(net: str) -> str:
    """Escape net names that are not plain Verilog identifiers."""
    if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_$]*", net):
        return net
    return f"\\{net} "


def format_verilog(netlist: Netlist) -> str:
    """Render a netlist as a structural Verilog module."""
    ports = netlist.inputs + netlist.outputs
    lines = [f"module {netlist.name} ({', '.join(_escape(p) for p in ports)});"]
    for net in netlist.inputs:
        lines.append(f"  input {_escape(net)};")
    for net in netlist.outputs:
        lines.append(f"  output {_escape(net)};")
    port_set = set(ports)
    wires = sorted(
        gate.output for gate in netlist.gates if gate.output not in port_set
    )
    for net in wires:
        lines.append(f"  wire {_escape(net)};")
    for idx, gate in enumerate(netlist.topological_order()):
        out = _escape(gate.output)
        ins = [_escape(net) for net in gate.inputs]
        primitive = _PRIMITIVE_OF.get(gate.gtype)
        if primitive is not None:
            args = ", ".join([out] + ins)
            lines.append(f"  {primitive} g{idx} ({args});")
        elif gate.gtype is GateType.CONST0:
            lines.append(f"  assign {out} = 1'b0;")
        elif gate.gtype is GateType.CONST1:
            lines.append(f"  assign {out} = 1'b1;")
        elif gate.gtype is GateType.AOI21:
            a, b, c = ins
            lines.append(f"  assign {out} = ~(({a} & {b}) | {c});")
        elif gate.gtype is GateType.AOI22:
            a, b, c, d = ins
            lines.append(f"  assign {out} = ~(({a} & {b}) | ({c} & {d}));")
        elif gate.gtype is GateType.OAI21:
            a, b, c = ins
            lines.append(f"  assign {out} = ~(({a} | {b}) & {c});")
        elif gate.gtype is GateType.OAI22:
            a, b, c, d = ins
            lines.append(f"  assign {out} = ~(({a} | {b}) & ({c} | {d}));")
        elif gate.gtype is GateType.MUX2:
            s, d1, d0 = ins
            lines.append(f"  assign {out} = {s} ? {d1} : {d0};")
        else:
            raise VerilogFormatError(f"cannot emit gate type {gate.gtype}")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def write_verilog(netlist: Netlist, target: PathOrFile) -> None:
    """Write structural Verilog to a path (atomically) or open file."""
    text = format_verilog(netlist)
    if hasattr(target, "write"):
        target.write(text)
    else:
        atomic_write_text(target, text)


# ----------------------------------------------------------------------
# Reading
# ----------------------------------------------------------------------

_ASSIGN_PATTERNS: List[Tuple[GateType, re.Pattern]] = [
    (GateType.AOI22,
     re.compile(r"~\(\((\S+) & (\S+)\) \| \((\S+) & (\S+)\)\)")),
    (GateType.AOI21, re.compile(r"~\(\((\S+) & (\S+)\) \| (\S+)\)")),
    (GateType.OAI22,
     re.compile(r"~\(\((\S+) \| (\S+)\) & \((\S+) \| (\S+)\)\)")),
    (GateType.OAI21, re.compile(r"~\(\((\S+) \| (\S+)\) & (\S+)\)")),
    (GateType.MUX2, re.compile(r"(\S+) \? (\S+) : (\S+)")),
]


def _unescape(token: str) -> str:
    token = token.strip()
    if token.startswith("\\"):
        return token[1:].strip()
    return token


def parse_verilog(text: str) -> Netlist:
    """Parse the writer's structural-Verilog subset."""
    # Strip comments, join into statements on ';'.
    text = re.sub(r"//[^\n]*", "", text)
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.S)
    header = re.search(r"module\s+(\S+)\s*\((.*?)\)\s*;", text, flags=re.S)
    if not header:
        raise VerilogFormatError("no module header found")
    netlist = Netlist(header.group(1))
    body = text[header.end():]
    end = body.find("endmodule")
    if end < 0:
        raise VerilogFormatError("missing endmodule")
    body = body[:end]
    for statement in (s.strip() for s in body.split(";")):
        if not statement:
            continue
        keyword = statement.split(None, 1)[0]
        if keyword in ("input", "output", "wire"):
            decl = statement[len(keyword):]
            for token in decl.split(","):
                net = _unescape(token)
                if not net:
                    continue
                if keyword == "input":
                    netlist.add_input(net)
                elif keyword == "output":
                    netlist.add_output(net)
        elif keyword in _TYPE_OF_PRIMITIVE:
            inst = re.match(r"\S+\s+\S+\s*\((.*)\)", statement, flags=re.S)
            if not inst:
                raise VerilogFormatError(f"bad instantiation: {statement!r}")
            args = [_unescape(a) for a in inst.group(1).split(",")]
            gtype = _TYPE_OF_PRIMITIVE[keyword]
            netlist.add_gate(Gate(args[0], gtype, tuple(args[1:])))
        elif keyword == "assign":
            match = re.match(r"assign\s+(\S+)\s*=\s*(.*)", statement, flags=re.S)
            if not match:
                raise VerilogFormatError(f"bad assign: {statement!r}")
            target = _unescape(match.group(1))
            rhs = match.group(2).strip()
            netlist.add_gate(_parse_assign(target, rhs))
        else:
            raise VerilogFormatError(f"unsupported statement: {statement!r}")
    netlist.validate()
    return netlist


def _parse_assign(target: str, rhs: str) -> Gate:
    if rhs == "1'b0":
        return Gate(target, GateType.CONST0, ())
    if rhs == "1'b1":
        return Gate(target, GateType.CONST1, ())
    for gtype, pattern in _ASSIGN_PATTERNS:
        match = pattern.fullmatch(rhs)
        if match:
            inputs = tuple(_unescape(g) for g in match.groups())
            return Gate(target, gtype, inputs)
    raise VerilogFormatError(f"unsupported assign expression: {rhs!r}")


def read_verilog(source: PathOrFile) -> Netlist:
    """Read structural Verilog from a path or open file."""
    if hasattr(source, "read"):
        return parse_verilog(source.read())
    with open(source, "r", encoding="utf-8") as handle:
        return parse_verilog(handle.read())
