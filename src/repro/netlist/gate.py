"""The cell library: gate types, arities and bit-parallel evaluation.

Two tiers of cells, mirroring the paper's Section III-A:

* *basic* gates — AND, OR, XOR, INV (plus the inverted/buffered forms),
  n-ary where associativity allows;
* *complex* standard cells — AOI/OAI and a 2:1 MUX — which appear after
  synthesis and technology mapping (Table III) and exercise the
  extended algebraic models.

Evaluation is bit-parallel: every net value is a Python integer whose
bits carry independent simulation vectors, so a single pass over the
netlist simulates up to thousands of input patterns.  ``mask`` bounds
the vector width (needed to implement NOT on unbounded ints).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple


class GateType(enum.Enum):
    """Every cell the netlist substrate understands."""

    CONST0 = "CONST0"
    CONST1 = "CONST1"
    BUF = "BUF"
    INV = "INV"
    AND = "AND"
    OR = "OR"
    XOR = "XOR"
    NAND = "NAND"
    NOR = "NOR"
    XNOR = "XNOR"
    #: AND-OR-Invert: ``!(a*b + c)``
    AOI21 = "AOI21"
    #: AND-OR-Invert: ``!(a*b + c*d)``
    AOI22 = "AOI22"
    #: OR-AND-Invert: ``!((a+b) * c)``
    OAI21 = "OAI21"
    #: OR-AND-Invert: ``!((a+b) * (c+d))``
    OAI22 = "OAI22"
    #: 2:1 multiplexer: inputs ``(sel, d1, d0)`` -> ``sel ? d1 : d0``
    MUX2 = "MUX2"


#: Gate types with a fixed number of inputs; ``None`` means n-ary (>= 2).
_FIXED_ARITY = {
    GateType.CONST0: 0,
    GateType.CONST1: 0,
    GateType.BUF: 1,
    GateType.INV: 1,
    GateType.AOI21: 3,
    GateType.AOI22: 4,
    GateType.OAI21: 3,
    GateType.OAI22: 4,
    GateType.MUX2: 3,
}

#: Gate types whose inputs are order-insensitive (used by strashing).
COMMUTATIVE_TYPES = frozenset(
    {
        GateType.AND,
        GateType.OR,
        GateType.XOR,
        GateType.NAND,
        GateType.NOR,
        GateType.XNOR,
    }
)


def gate_arity(gtype: GateType) -> Optional[int]:
    """Fixed arity of a gate type, or ``None`` for n-ary gates."""
    return _FIXED_ARITY.get(gtype)


@dataclass(frozen=True)
class Gate:
    """One netlist cell: ``output = gtype(inputs)``.

    Immutable so gates can live in sets and be shared between netlist
    copies.
    """

    output: str
    gtype: GateType
    inputs: Tuple[str, ...]

    def __post_init__(self) -> None:
        fixed = gate_arity(self.gtype)
        if fixed is not None:
            if len(self.inputs) != fixed:
                raise ValueError(
                    f"{self.gtype.value} gate {self.output!r} needs "
                    f"{fixed} inputs, got {len(self.inputs)}"
                )
        elif len(self.inputs) < 2:
            raise ValueError(
                f"{self.gtype.value} gate {self.output!r} needs >= 2 "
                f"inputs, got {len(self.inputs)}"
            )

    def __str__(self) -> str:
        return f"{self.output} = {self.gtype.value}({', '.join(self.inputs)})"


def evaluate_gate(
    gtype: GateType, values: Sequence[int], mask: int = 1
) -> int:
    """Bit-parallel evaluation of one gate.

    ``values`` are the input net values (bit vectors packed in ints),
    ``mask`` selects the active vector lanes.

    >>> evaluate_gate(GateType.AOI21, [0b11, 0b01, 0b00], mask=0b11)
    2
    """
    if gtype is GateType.CONST0:
        return 0
    if gtype is GateType.CONST1:
        return mask
    if gtype is GateType.BUF:
        return values[0] & mask
    if gtype is GateType.INV:
        return ~values[0] & mask
    if gtype is GateType.AND:
        acc = mask
        for value in values:
            acc &= value
        return acc
    if gtype is GateType.NAND:
        acc = mask
        for value in values:
            acc &= value
        return ~acc & mask
    if gtype is GateType.OR:
        acc = 0
        for value in values:
            acc |= value
        return acc & mask
    if gtype is GateType.NOR:
        acc = 0
        for value in values:
            acc |= value
        return ~acc & mask
    if gtype is GateType.XOR:
        acc = 0
        for value in values:
            acc ^= value
        return acc & mask
    if gtype is GateType.XNOR:
        acc = 0
        for value in values:
            acc ^= value
        return ~acc & mask
    if gtype is GateType.AOI21:
        a, b, c = values
        return ~((a & b) | c) & mask
    if gtype is GateType.AOI22:
        a, b, c, d = values
        return ~((a & b) | (c & d)) & mask
    if gtype is GateType.OAI21:
        a, b, c = values
        return ~((a | b) & c) & mask
    if gtype is GateType.OAI22:
        a, b, c, d = values
        return ~((a | b) & (c | d)) & mask
    if gtype is GateType.MUX2:
        sel, d1, d0 = values
        return ((sel & d1) | (~sel & d0)) & mask
    raise ValueError(f"unknown gate type {gtype}")
