"""Gate-level netlist substrate.

The paper's tool consumes flattened gate-level netlists ("# eqns" in
Tables I-III is the number of gate equations).  This package provides
the equivalent substrate:

``gate``
    the cell library — basic gates (INV/BUF/AND/OR/XOR/NAND/NOR/XNOR,
    n-ary where it makes sense) plus the complex standard cells
    (AOI21/AOI22/OAI21/OAI22, MUX2) produced by technology mapping;
``netlist``
    the :class:`Netlist` container with topological sorting, per-output
    logic-cone extraction (Theorem 2 works cone-by-cone), bit-parallel
    simulation and statistics;
``build``
    :class:`NetlistBuilder` — the convenience layer the multiplier
    generators and the synthesizer use to emit gates, with optional
    structural hashing;
``eqn_io`` / ``blif_io`` / ``verilog_io``
    file formats (a functional equations format, a BLIF subset, and
    structural Verilog).
"""

from repro.netlist.gate import Gate, GateType, evaluate_gate, gate_arity
from repro.netlist.netlist import Netlist, NetlistError
from repro.netlist.build import NetlistBuilder
from repro.netlist.eqn_io import read_eqn, write_eqn, parse_eqn, format_eqn
from repro.netlist.blif_io import read_blif, write_blif
from repro.netlist.verilog_io import read_verilog, write_verilog

__all__ = [
    "Gate",
    "GateType",
    "evaluate_gate",
    "gate_arity",
    "Netlist",
    "NetlistError",
    "NetlistBuilder",
    "read_eqn",
    "write_eqn",
    "parse_eqn",
    "format_eqn",
    "read_blif",
    "write_blif",
    "read_verilog",
    "write_verilog",
]
