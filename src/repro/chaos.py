"""Deterministic fault injection for the resilience tier.

``REPRO_CHAOS`` turns on seeded chaos at named *sites*::

    REPRO_CHAOS="crash_worker=0.1,io_error=0.05,delay.sweep=0.2@seed=7"

Each ``site=value`` entry is a firing probability in ``[0, 1]`` except
``delay.<span>=SECONDS`` entries, which slow the named telemetry span
(the same hook point as ``REPRO_TELEMETRY_DELAY``).  The optional
``@seed=N`` suffix seeds the schedule.

Determinism is the whole design: whether a site fires is a pure
function of ``(seed, scope, site, key)`` — no global RNG, no wall
clock.  ``key`` defaults to a per-site call counter, so the N-th visit
to a site always makes the same decision for a given seed, and two
runs with the same seed inject the *identical* fault schedule.  That
is what lets CI assert "a campaign under crashes and IO errors
finishes bit-identical to a fault-free run" instead of merely "usually
survives".

Sites used by the stack:

``crash_worker``
    Kills the current process with ``os._exit`` — but only inside a
    supervised campaign worker (a scope entered via
    :meth:`Chaos.enter_scope`), never in the coordinating process.
    The scope key includes the supervisor's resubmission attempt, so a
    resubmitted netlist draws a *fresh* schedule instead of replaying
    the crash forever.
``io_error``
    Raises :class:`ChaosIOError` (an ``OSError``) before cache and
    checkpoint IO — the transient-failure class the retry policy
    retries.
``corrupt_cache``
    Deterministically mangles a cache payload on write, exercising the
    quarantine path on the next read.

Decisions fired are mirrored to ``chaos.injected.<site>`` telemetry
counters (per-process) and recorded in a bounded in-memory event log
for the determinism tests.
"""

from __future__ import annotations

import hashlib
import os
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

CHAOS_ENV = "REPRO_CHAOS"

#: Exit code used by injected worker crashes; distinguishable from a
#: real SIGKILL (negative exitcode) and from clean exits in tests.
CRASH_EXIT_CODE = 73

#: Cap on the in-memory event log (enough for any test, bounded for
#: long campaigns).
_MAX_EVENTS = 10_000


class ChaosIOError(OSError):
    """An injected transient IO failure (retryable by classification)."""


@dataclass(frozen=True)
class ChaosSpec:
    """Parsed ``REPRO_CHAOS`` value: site rates, span delays, seed."""

    rates: Mapping[str, float] = field(default_factory=dict)
    delays: Mapping[str, float] = field(default_factory=dict)
    seed: int = 0
    raw: str = ""

    @classmethod
    def parse(cls, raw: Optional[str]) -> Optional["ChaosSpec"]:
        """Parse the env syntax; ``None``/blank/unparseable → ``None``.

        >>> spec = ChaosSpec.parse("crash_worker=0.5,delay.sweep=0.2@seed=7")
        >>> spec.rates, dict(spec.delays), spec.seed
        ({'crash_worker': 0.5}, {'sweep': 0.2}, 7)
        """
        if raw is None or not raw.strip():
            return None
        body, _, suffix = raw.partition("@")
        seed = 0
        if suffix.strip():
            name, _, value = suffix.partition("=")
            if name.strip() == "seed":
                try:
                    seed = int(value)
                except ValueError:
                    pass
        rates: Dict[str, float] = {}
        delays: Dict[str, float] = {}
        for item in body.split(","):
            site, _, value = item.partition("=")
            site = site.strip()
            if not site or not value.strip():
                continue
            try:
                number = float(value)
            except ValueError:
                continue
            if site.startswith("delay."):
                delays[site[len("delay."):]] = number
            else:
                rates[site] = max(0.0, min(1.0, number))
        if not rates and not delays:
            return None
        return cls(rates=rates, delays=delays, seed=seed, raw=raw)


class Chaos:
    """Seeded, deterministic fault scheduler for one process.

    Thread-safe; the per-site counters live behind one lock.  A
    disabled instance (``spec=None``) makes every call a cheap no-op,
    so call sites need no guards.
    """

    def __init__(self, spec: Optional[ChaosSpec] = None):
        self.spec = spec
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._scope: Optional[str] = None
        self.events: List[Tuple[str, str, bool]] = []

    @property
    def enabled(self) -> bool:
        return self.spec is not None and bool(self.spec.rates)

    def enter_scope(self, scope: str) -> None:
        """Enter a supervised-worker namespace.

        Resets the per-site counters so every worker draws a schedule
        determined only by ``(seed, scope)`` — a resubmitted netlist
        (scope includes the attempt number) gets a fresh draw instead
        of inheriting and replaying the parent's counters.  Also arms
        the ``crash_worker`` site: injected crashes only ever kill
        scoped (supervised, resubmittable) processes.
        """
        with self._lock:
            self._scope = scope
            self._counters = {}
            self.events = []

    @property
    def scope(self) -> Optional[str]:
        return self._scope

    def fires(self, site: str, key: Optional[str] = None) -> bool:
        """Deterministic decision for one visit to ``site``.

        ``key`` pins the decision to an explicit identity (netlist,
        cache path, ...); without one, a per-site visit counter is
        used, so the N-th unkeyed visit is reproducible too.
        """
        spec = self.spec
        if spec is None:
            return False
        rate = spec.rates.get(site)
        if not rate:
            return False
        with self._lock:
            if key is None:
                index = self._counters.get(site, 0)
                self._counters[site] = index + 1
                key = f"#{index}"
            material = f"{spec.seed}:{self._scope or ''}:{site}:{key}"
            digest = hashlib.sha256(material.encode("utf-8")).digest()
            draw = int.from_bytes(digest[:8], "big") / 2.0**64
            fired = draw < rate
            if len(self.events) < _MAX_EVENTS:
                self.events.append((site, key, fired))
        if fired:
            self._count(site)
        return fired

    def crash(self, site: str = "crash_worker", key: Optional[str] = None) -> None:
        """Kill the process via ``os._exit`` if the site fires.

        Only armed inside an entered scope — the coordinating process
        (and plain library users with ``REPRO_CHAOS`` set) must never
        be collateral damage; crashes simulate *worker* death, which
        the campaign supervisor detects and resubmits.
        """
        if self._scope is None:
            return
        if self.fires(site, key):
            os._exit(CRASH_EXIT_CODE)

    def io_error(
        self,
        site: str = "io_error",
        key: Optional[str] = None,
        where: str = "",
    ) -> None:
        """Raise :class:`ChaosIOError` if the site fires."""
        if self.fires(site, key):
            raise ChaosIOError(
                f"chaos: injected IO error at {where or site}"
            )

    def corrupt(
        self,
        payload: bytes,
        site: str = "corrupt_cache",
        key: Optional[str] = None,
    ) -> bytes:
        """Deterministically mangle ``payload`` if the site fires.

        Truncation plus a NUL marker: guaranteed to break JSON parsing
        while staying a pure function of the input, so two runs with
        the same seed corrupt identically.
        """
        if not self.fires(site, key):
            return payload
        return payload[: max(1, len(payload) // 2)] + b"\x00<chaos>"

    def _count(self, site: str) -> None:
        try:
            from repro.telemetry import current

            current().counter(f"chaos.injected.{site}")
        except Exception:  # pragma: no cover - telemetry must not break chaos
            pass


#: Process-wide singleton (lazily parsed from the environment).
_ACTIVE: Optional[Chaos] = None
_ACTIVE_LOCK = threading.Lock()


def get_chaos() -> Chaos:
    """The process-wide :class:`Chaos`, parsed from ``REPRO_CHAOS``.

    Forked campaign workers inherit the parent's configured instance
    (and then :meth:`Chaos.enter_scope` their own namespace); spawned
    workers re-parse the environment.
    """
    global _ACTIVE
    if _ACTIVE is None:
        with _ACTIVE_LOCK:
            if _ACTIVE is None:
                _ACTIVE = Chaos(ChaosSpec.parse(os.environ.get(CHAOS_ENV)))
    return _ACTIVE


def configure(raw: Optional[str]) -> Chaos:
    """Install a chaos spec programmatically (tests, harnesses).

    ``None`` disables injection.  ``delay.<span>`` entries are pushed
    into the telemetry span-delay hook immediately, mirroring what the
    env var does at import time.
    """
    global _ACTIVE
    spec = ChaosSpec.parse(raw)
    with _ACTIVE_LOCK:
        _ACTIVE = Chaos(spec)
    if spec is not None and spec.delays:
        from repro import telemetry

        telemetry.add_span_delays(spec.delays)
    return _ACTIVE
