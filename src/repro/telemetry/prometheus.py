"""Prometheus text exposition of a :class:`~repro.telemetry.Telemetry`.

The coming distributed tier (ROADMAP item 1) is a fleet of workers;
the one thing every off-the-shelf scraper understands is the
Prometheus text format (version 0.0.4).  This module renders the
registry snapshot — counters, gauges, and the log-bucket histograms —
as that format, so ``GET /metrics`` content-negotiates between the
existing JSON payload and a scrapeable text body without the service
growing a client library.

Mapping rules:

* Metric names are sanitized to ``[a-zA-Z0-9_]`` and prefixed
  ``repro_``: counter ``cache.hit`` becomes ``repro_cache_hit_total``
  (Prometheus counters end in ``_total``), gauge
  ``job.job-1.progress`` becomes ``repro_job_progress{job="job-1"}``
  (the job id moves into a label so the gauge family stays one
  series set), histogram ``span.http.request`` becomes the standard
  triplet ``repro_span_http_request_seconds{_bucket,_sum,_count}``
  with cumulative ``le`` bucket labels.
* Only non-empty buckets are emitted (plus the mandatory ``+Inf``);
  cumulative counts make that a valid sparse exposition.
* Values render with ``repr``-precision floats — Prometheus parses
  scientific notation.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional

from repro.telemetry.histogram import Histogram

#: Content type a scraper expects for text exposition.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_INVALID = re.compile(r"[^a-zA-Z0-9_]")
_JOB_GAUGE = re.compile(r"^job\.(?P<job>.+)\.(?P<field>[a-z_]+)$")


def _sanitize(name: str) -> str:
    clean = _INVALID.sub("_", name)
    if not clean or clean[0].isdigit():
        clean = "_" + clean
    return f"repro_{clean}"


def _format_value(value: Any) -> str:
    if isinstance(value, bool):  # bool is an int subclass; be explicit
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _format_le(bound: float) -> str:
    # Short, stable bucket labels: 1.19e-06 not 1.1892071150027212e-06.
    return f"{bound:.6g}"


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def render_prometheus(metrics: Dict[str, Any]) -> str:
    """Render a :meth:`Telemetry.metrics` snapshot as exposition text.

    Accepts the plain snapshot dict so callers can render merged
    fleet views (``merge_metrics_events``) the same way.
    """
    lines: List[str] = []

    for name in sorted(metrics.get("counters") or {}):
        value = metrics["counters"][name]
        metric = _sanitize(name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(value)}")

    gauge_families: Dict[str, List[str]] = {}
    for name in sorted(metrics.get("gauges") or {}):
        value = metrics["gauges"][name]
        match = _JOB_GAUGE.match(name)
        if match:
            metric = _sanitize(f"job.{match.group('field')}")
            sample = (
                f'{metric}{{job="{_escape_label(match.group("job"))}"}} '
                f"{_format_value(value)}"
            )
        else:
            metric = _sanitize(name)
            sample = f"{metric} {_format_value(value)}"
        gauge_families.setdefault(metric, []).append(sample)
    for metric in sorted(gauge_families):
        lines.append(f"# TYPE {metric} gauge")
        lines.extend(gauge_families[metric])

    histograms = metrics.get("histograms") or {}
    for name in sorted(histograms):
        state = histograms[name]
        histogram = (
            state
            if isinstance(state, Histogram)
            else Histogram.from_state(state)
        )
        # Span histograms record seconds; carry the unit in the name
        # per Prometheus convention.
        metric = _sanitize(name) + "_seconds"
        lines.append(f"# TYPE {metric} histogram")
        for bound, cumulative in histogram.cumulative_buckets():
            lines.append(
                f'{metric}_bucket{{le="{_format_le(bound)}"}} {cumulative}'
            )
        lines.append(f'{metric}_bucket{{le="+Inf"}} {histogram.count}')
        lines.append(f"{metric}_sum {_format_value(histogram.total)}")
        lines.append(f"{metric}_count {histogram.count}")

    return "\n".join(lines) + "\n"


def wants_prometheus(
    query_format: Optional[str], accept_header: Optional[str]
) -> bool:
    """Content negotiation for ``GET /metrics``.

    ``?format=prometheus`` (or ``text``) wins outright;
    ``?format=json`` forces JSON; otherwise an ``Accept`` header
    naming ``text/plain`` or OpenMetrics opts in.  Default stays JSON
    so every existing client keeps working.
    """
    if query_format:
        return query_format in ("prometheus", "text")
    accept = (accept_header or "").lower()
    return "text/plain" in accept or "openmetrics" in accept
