"""Mergeable log-bucket latency histograms.

The paper's evaluation is a latency story (backward rewriting vs the
SAT/BDD/Gröbner baselines), and averages hide exactly the tail the
serving tier cares about.  This module is the distribution type every
latency in the system lands in: span exits feed ``span.<name>``
histograms automatically, the cache times its lookups, and the HTTP
``/metrics`` endpoint serves the buckets — in Prometheus text format
when asked (:mod:`repro.telemetry.prometheus`).

Design constraints, in order:

* **Mergeable across processes.**  Forked campaign/bench workers each
  accumulate their own histogram and flush it in their exit ``metrics``
  event; the analyzer sums them.  Fixed geometric bucket boundaries
  make merge a per-index counter add — no rebinning, no loss beyond
  the bucket resolution both sides already had.
* **Unbounded range, bounded memory.**  Bucket ``i`` covers
  ``(BASE * GROWTH^(i-1), BASE * GROWTH^i]`` with ``BASE`` = 1µs and
  ``GROWTH`` = 2^(1/4) (~19% per bucket, ~55 buckets per 1µs→1s
  decade span); only non-empty buckets are stored.
* **Quantiles without samples.**  ``quantile()`` interpolates inside
  the covering bucket, clamped to the observed min/max, so p50/p90/p99
  carry at most one bucket width (±19%) of error — plenty for a
  regression guard, at O(non-empty buckets) memory.

The JSON state (:meth:`Histogram.state`) is what travels in trace
``metrics`` events and the ledger; :meth:`Histogram.from_state` /
:meth:`Histogram.merge` reassemble the fleet view.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: Lower edge of bucket 1 (values at or below land in bucket 0).
BASE = 1e-6
#: Geometric growth per bucket: 2^(1/4) keeps quantile error under
#: ~19% while a 1µs..100s span still fits in ~110 buckets.
GROWTH = 2.0 ** 0.25

_LOG_GROWTH = math.log(GROWTH)


def bucket_index(value: float) -> int:
    """The bucket covering ``value``: 0 for values ≤ BASE, else the
    smallest ``i`` with ``value <= BASE * GROWTH^i``."""
    if value <= BASE:
        return 0
    index = math.ceil(math.log(value / BASE) / _LOG_GROWTH)
    # Guard the edge where float log error lands us one bucket low.
    if BASE * GROWTH ** index < value:
        index += 1
    return max(index, 1)


def bucket_upper(index: int) -> float:
    """Inclusive upper bound of bucket ``index``."""
    return BASE * GROWTH ** index if index > 0 else BASE


class Histogram:
    """One mergeable log-bucket distribution (seconds, typically)."""

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        #: bucket index -> observation count (non-empty buckets only).
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        index = bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    # -- quantiles -------------------------------------------------------

    def quantile(self, q: float) -> Optional[float]:
        """The ``q``-quantile (0..1), interpolated within its bucket
        and clamped to the observed extrema; ``None`` when empty."""
        if not self.count:
            return None
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        assert self.min is not None and self.max is not None
        rank = q * self.count
        cumulative = 0.0
        for index in sorted(self.buckets):
            in_bucket = self.buckets[index]
            if cumulative + in_bucket >= rank:
                low = 0.0 if index == 0 else bucket_upper(index - 1)
                high = bucket_upper(index)
                fraction = (rank - cumulative) / in_bucket
                value = low + fraction * (high - low)
                return min(max(value, self.min), self.max)
            cumulative += in_bucket
        return self.max

    # -- merge / serialization -------------------------------------------

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other`` into this histogram in place (fleet view)."""
        self.count += other.count
        self.total += other.total
        if other.min is not None:
            self.min = other.min if self.min is None else min(
                self.min, other.min
            )
        if other.max is not None:
            self.max = other.max if self.max is None else max(
                self.max, other.max
            )
        for index, in_bucket in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + in_bucket
        return self

    def state(self) -> Dict[str, Any]:
        """JSON-serializable state: what metrics events carry.

        Bucket keys become strings (JSON object keys); the summary
        quantiles are included so consumers that never rebin (the
        renderer, the JSON ``/metrics`` view) need no bucket math.
        """
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
            "buckets": {
                str(index): self.buckets[index]
                for index in sorted(self.buckets)
            },
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "Histogram":
        """Rebuild from :meth:`state` output (tolerates missing keys)."""
        histogram = cls()
        histogram.count = int(state.get("count", 0))
        histogram.total = float(state.get("sum", 0.0))
        minimum = state.get("min")
        maximum = state.get("max")
        histogram.min = None if minimum is None else float(minimum)
        histogram.max = None if maximum is None else float(maximum)
        for key, in_bucket in (state.get("buckets") or {}).items():
            histogram.buckets[int(key)] = int(in_bucket)
        return histogram

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` per non-empty bucket,
        ascending — the Prometheus ``le`` series sans the +Inf row."""
        rows: List[Tuple[float, int]] = []
        running = 0
        for index in sorted(self.buckets):
            running += self.buckets[index]
            rows.append((bucket_upper(index), running))
        return rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Histogram(count={self.count}, sum={self.total:.6f}, "
            f"p50={self.quantile(0.5)}, p99={self.quantile(0.99)})"
        )


def merge_states(states: Iterable[Dict[str, Any]]) -> Histogram:
    """Merge serialized histogram states into one fleet histogram."""
    merged = Histogram()
    for state in states:
        merged.merge(Histogram.from_state(state))
    return merged
