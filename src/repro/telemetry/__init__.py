"""Tracing and metrics spine shared by every layer of the package.

The paper's evaluation is runtime/memory tables, yet timing used to be
fragmented: :class:`~repro.rewrite.backward.RewriteStats` covered only
the per-bit reference path, the benchmark harness kept its own
stopwatch, and the result cache counted hits privately.  This module is
the one place all of them report to:

* **Spans** — hierarchical timed regions (``span("compile")``,
  ``span("sweep.round", round=3)``) recording wall time
  (``perf_counter``), per-thread CPU time (``thread_time``) and — when
  asked — the ``tracemalloc`` peak.  Nesting is tracked per thread, so
  concurrent server jobs build separate subtrees.
* **Counters / gauges / histograms** — named process-wide metrics
  behind one lock (``cache.hit``, ``job.<id>.progress``); every span
  exit also feeds a ``span.<name>`` log-bucket latency histogram
  (:mod:`repro.telemetry.histogram`), so request, cone, sweep-round
  and cache-lookup latencies are distributions with p50/p90/p99, not
  averages.  The HTTP ``/metrics`` endpoint serves the same registry
  as JSON or Prometheus text (:mod:`repro.telemetry.prometheus`).
* **Sinks** — span/metrics events fan out to pluggable sinks: a JSONL
  trace file (``--trace out.jsonl``), an in-memory list for tests, and
  the ``repro trace`` renderer that re-reads the JSONL.  With no sink
  attached, a span is two clock reads and a list push — cheap enough
  to leave on permanently, which is how ``RewriteStats.runtime_s``
  is now derived.

Trace JSONL schema (one event per line, :data:`TRACE_SCHEMA`)::

    {"type": "span", "schema": 1, "name": "sweep.round",
     "span_id": 7, "parent_id": 6, "pid": 4242, "thread": "MainThread",
     "start_unix": 1754500000.1, "wall_s": 0.0021, "cpu_s": 0.0020,
     "peak_bytes": null, "status": "ok", "attrs": {"round": 3}}
    {"type": "metrics", "schema": 1, "unix": ...,
     "counters": {"cache.hit": 4}, "gauges": {...}}

Span ids are unique per process; forked pool workers append to the
same O_APPEND file handle (one ``write()`` per line, same reasoning as
:func:`repro.ioutil.atomic_append_line`), and the renderer keys spans
by ``(pid, span_id)`` so multi-process traces stay well-formed.
Counters and histograms are per-process: each process flushes its own
exit ``metrics`` event (an :mod:`atexit` hook arms the moment a sink
attaches, so short-lived forked workers flush too), and trace
consumers (:func:`render_trace`, :mod:`repro.telemetry.analyze`)
merge the last event per pid into the fleet view.

``REPRO_TELEMETRY_DELAY`` (``"name=seconds,name=seconds"``) is a
fault-injection hook: named spans sleep that long before closing, so
CI can manufacture a latency regression and prove the ``repro trace
diff --check`` guard catches it.  It perturbs wall clocks only —
never results — and is parsed once at import.

The active :class:`Telemetry` resolves through a :mod:`contextvars`
variable: drivers accept ``telemetry=`` and wrap their work in
:func:`use`, so engines and the cache deep below pick the same
instance up via :func:`current` without widening every signature.
"""

from __future__ import annotations

import atexit
import contextlib
import contextvars
import itertools
import json
import os
import threading
import time
import tracemalloc
import weakref
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.telemetry.histogram import Histogram, merge_states

#: Bump on any change to the emitted event layout.
#: 2: ``metrics`` events carry a ``histograms`` map (log-bucket
#: latency distributions, one state dict per name).
TRACE_SCHEMA = 2


def _parse_delays(raw: Optional[str]) -> Dict[str, float]:
    """Parse ``REPRO_TELEMETRY_DELAY`` (``"sweep=0.5,decode=0.1"``)."""
    delays: Dict[str, float] = {}
    for item in (raw or "").split(","):
        name, _, seconds = item.partition("=")
        if name.strip() and seconds.strip():
            try:
                delays[name.strip()] = float(seconds)
            except ValueError:
                continue
    return delays


#: Fault-injection hook: span name -> extra seconds of wall time.
_SPAN_DELAYS = _parse_delays(os.environ.get("REPRO_TELEMETRY_DELAY"))


def add_span_delays(delays: Dict[str, float]) -> None:
    """Merge extra span slowdowns into the fault-injection hook.

    Used by :mod:`repro.chaos` so ``REPRO_CHAOS="delay.sweep=0.2"``
    rides the exact same mechanism as ``REPRO_TELEMETRY_DELAY``.
    """
    _SPAN_DELAYS.update(delays)


def _chaos_span_delays(raw: Optional[str]) -> Dict[str, float]:
    """``delay.<span>=s`` entries of a ``REPRO_CHAOS`` value."""
    body = (raw or "").partition("@")[0]
    return {
        name[len("delay."):]: seconds
        for name, seconds in _parse_delays(body).items()
        if name.startswith("delay.")
    }


add_span_delays(_chaos_span_delays(os.environ.get("REPRO_CHAOS")))


class Span:
    """One timed region; use as a context manager.

    ``elapsed()`` / ``cpu_elapsed()`` read the running clocks at any
    point inside the region (that is how ``RewriteStats.runtime_s``
    is populated before a ``return`` inside the ``with`` block);
    ``wall_s`` / ``cpu_s`` are the final figures after exit.  With
    ``memory=True`` the span reports the ``tracemalloc`` peak at exit,
    starting the tracer only if nobody else is tracing — a nested
    memory span therefore reports the *session* peak (a conservative
    upper bound) instead of clobbering the outer measurement.
    """

    __slots__ = (
        "name",
        "attrs",
        "span_id",
        "parent_id",
        "start_unix",
        "wall_s",
        "cpu_s",
        "peak_bytes",
        "status",
        "error",
        "_telemetry",
        "_memory",
        "_owns_tracemalloc",
        "_wall0",
        "_cpu0",
        "_done",
    )

    def __init__(
        self,
        telemetry: "Telemetry",
        name: str,
        attrs: Dict[str, Any],
        memory: bool = False,
    ):
        self.name = name
        self.attrs = attrs
        self.span_id = 0
        self.parent_id: Optional[int] = None
        self.start_unix = 0.0
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self.peak_bytes: Optional[int] = None
        self.status = "ok"
        self.error: Optional[str] = None
        self._telemetry = telemetry
        self._memory = memory
        self._owns_tracemalloc = False
        self._wall0 = 0.0
        self._cpu0 = 0.0
        self._done = False

    def __enter__(self) -> "Span":
        telemetry = self._telemetry
        self.span_id = next(telemetry._ids)
        stack = telemetry._stack()
        self.parent_id = stack[-1].span_id if stack else None
        stack.append(self)
        if self._memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._owns_tracemalloc = True
        self.start_unix = time.time()
        self._wall0 = time.perf_counter()
        self._cpu0 = time.thread_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if _SPAN_DELAYS:
            delay = _SPAN_DELAYS.get(self.name)
            if delay:
                time.sleep(delay)
        self.wall_s = time.perf_counter() - self._wall0
        self.cpu_s = time.thread_time() - self._cpu0
        if self._memory and tracemalloc.is_tracing():
            self.peak_bytes = tracemalloc.get_traced_memory()[1]
        if self._owns_tracemalloc:
            tracemalloc.stop()
            self._owns_tracemalloc = False
        if exc_type is not None:
            self.status = "error"
            self.error = f"{exc_type.__name__}: {exc}"
        stack = self._telemetry._stack()
        if self in stack:
            # Pop self plus any children orphaned above it — a child
            # that never exited (exception unwound past an explicit
            # begin/end pairing) must not adopt later spans.
            while stack.pop() is not self:
                pass
        self._done = True
        # Every span exit is one histogram sample: latency becomes a
        # distribution (p50/p90/p99) without any caller opting in.
        self._telemetry.observe(f"span.{self.name}", self.wall_s)
        self._telemetry._emit_span(self)
        return False

    def elapsed(self) -> float:
        """Wall seconds since the span started (readable mid-region)."""
        if self._done:
            return self.wall_s
        return time.perf_counter() - self._wall0

    def cpu_elapsed(self) -> float:
        """Thread-CPU seconds since the span started."""
        if self._done:
            return self.cpu_s
        return time.thread_time() - self._cpu0

    def annotate(self, **attrs: Any) -> "Span":
        """Attach attributes discovered mid-region (e.g. row counts)."""
        self.attrs.update(attrs)
        return self


class MemorySink:
    """Collects events in a list — the test/staging sink."""

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []
        self._lock = threading.Lock()

    def handle(self, event: Dict[str, Any]) -> None:
        with self._lock:
            self.events.append(event)

    def close(self) -> None:  # part of the sink contract
        pass


class JsonlSink:
    """Appends one JSON line per event to a trace file.

    The file opens in append mode and every event is one ``write()``
    plus a flush, so forked pool workers inheriting the handle
    interleave whole lines (O_APPEND), never fragments — the same
    contract :func:`repro.ioutil.atomic_append_line` relies on.
    """

    def __init__(self, path: Union[str, os.PathLike]):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")
        self._lock = threading.Lock()

    def handle(self, event: Dict[str, Any]) -> None:
        line = json.dumps(event, sort_keys=True, default=str) + "\n"
        with self._lock:
            self._handle.write(line)
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            try:
                self._handle.close()
            except ValueError:  # pragma: no cover - already closed
                pass


class Telemetry:
    """Thread-safe span/counter/gauge registry with pluggable sinks."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._sinks: List[Any] = []
        self._ids = itertools.count(1)
        self._local = threading.local()

    # -- spans ----------------------------------------------------------

    def span(self, name: str, memory: bool = False, **attrs: Any) -> Span:
        """A new span; enter it with ``with``.  ``attrs`` are free-form
        JSON-serializable annotations (``engine="vector"``)."""
        return Span(self, name, attrs, memory=memory)

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def active_span(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def _emit_span(self, span: Span) -> None:
        if not self._sinks:
            return
        event = {
            "type": "span",
            "schema": TRACE_SCHEMA,
            "name": span.name,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "pid": os.getpid(),
            "thread": threading.current_thread().name,
            "start_unix": span.start_unix,
            "wall_s": span.wall_s,
            "cpu_s": span.cpu_s,
            "peak_bytes": span.peak_bytes,
            "status": span.status,
            "attrs": span.attrs,
        }
        if span.error is not None:
            event["error"] = span.error
        self.emit(event)

    # -- counters / gauges ----------------------------------------------

    def counter(self, name: str, delta: int = 1) -> int:
        """Add ``delta`` to a named counter; returns the new value."""
        with self._lock:
            value = self._counters.get(name, 0) + delta
            self._counters[name] = value
        return value

    def gauge(self, name: str, value: float) -> None:
        """Set a named gauge to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one sample in the named log-bucket histogram."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram()
            histogram.observe(value)

    def clear_gauge(self, name: str) -> None:
        """Drop a gauge (e.g. when its job is evicted)."""
        with self._lock:
            self._gauges.pop(name, None)

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counters)

    def gauges(self) -> Dict[str, float]:
        with self._lock:
            return dict(self._gauges)

    def histogram(self, name: str) -> Optional[Histogram]:
        """The live histogram object for ``name`` (None if never fed)."""
        with self._lock:
            return self._histograms.get(name)

    def histograms(self) -> Dict[str, Dict[str, Any]]:
        """Serialized state of every histogram (JSON-ready)."""
        with self._lock:
            return {
                name: histogram.state()
                for name, histogram in self._histograms.items()
            }

    def metrics(self) -> Dict[str, Any]:
        """Snapshot of the registry (the ``/metrics`` payload core)."""
        with self._lock:
            return {
                "schema": TRACE_SCHEMA,
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: histogram.state()
                    for name, histogram in self._histograms.items()
                },
            }

    def reset(self) -> None:
        """Zero counters/gauges/histograms (tests; sinks stay)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # -- sinks ----------------------------------------------------------

    @property
    def sinks(self) -> List[Any]:
        return list(self._sinks)

    def add_sink(self, sink: Any) -> Any:
        with self._lock:
            self._sinks.append(sink)
        _arm_exit_flush(self)
        return sink

    def remove_sink(self, sink: Any) -> None:
        with self._lock:
            if sink in self._sinks:
                self._sinks.remove(sink)

    def emit(self, event: Dict[str, Any]) -> None:
        """Hand one event to every attached sink."""
        for sink in self._sinks:
            sink.handle(event)

    def flush_metrics(self) -> None:
        """Emit the registry snapshot as one ``metrics`` event."""
        if not self._sinks:
            return
        event = self.metrics()
        event["type"] = "metrics"
        event["unix"] = time.time()
        event["pid"] = os.getpid()
        self.emit(event)


# -- interpreter-exit flushing ------------------------------------------

#: Registries that have (or had) sinks attached; flushed at exit so a
#: short-lived forked worker's counters/histograms reach the shared
#: trace file instead of dying with the process.
_FLUSH_ON_EXIT: "weakref.WeakSet[Telemetry]" = weakref.WeakSet()
_EXIT_ARMED = False


def _flush_at_exit() -> None:
    for registry in list(_FLUSH_ON_EXIT):
        try:
            registry.flush_metrics()
            for sink in registry.sinks:
                sink.close()
        except Exception:  # pragma: no cover - never break shutdown
            pass


def _arm_exit_flush(registry: "Telemetry") -> None:
    """Register ``registry`` for the one process-wide exit flush.

    The :mod:`atexit` entry is armed once per process; fork children
    inherit it (and the registry set), so pool workers that exit
    without an explicit flush still emit their final metrics event —
    the torn-tail case :func:`load_trace` used to paper over.
    """
    global _EXIT_ARMED
    _FLUSH_ON_EXIT.add(registry)
    if not _EXIT_ARMED:
        _EXIT_ARMED = True
        atexit.register(_flush_at_exit)


# -- active-instance plumbing -------------------------------------------

_GLOBAL = Telemetry()

_ACTIVE: "contextvars.ContextVar[Optional[Telemetry]]" = (
    contextvars.ContextVar("repro_telemetry", default=None)
)


def get_telemetry() -> Telemetry:
    """The process-wide default registry (what ``--trace`` attaches to)."""
    return _GLOBAL


def current() -> Telemetry:
    """The active registry: the innermost :func:`use`, else the global."""
    return _ACTIVE.get() or _GLOBAL


@contextlib.contextmanager
def use(telemetry: Telemetry) -> Iterator[Telemetry]:
    """Make ``telemetry`` the active registry for the enclosed region.

    Drivers accepting ``telemetry=`` wrap their work in this, so the
    engines and caches they call emit into the same instance without
    every signature in between naming it.
    """
    token = _ACTIVE.set(telemetry)
    try:
        yield telemetry
    finally:
        _ACTIVE.reset(token)


def resolve(telemetry: Optional[Telemetry] = None) -> Telemetry:
    """``telemetry`` if given, else :func:`current`."""
    return telemetry if telemetry is not None else current()


# -- trace file loading / rendering -------------------------------------


def load_trace(path: Union[str, os.PathLike]) -> List[Dict[str, Any]]:
    """Parse a JSONL trace; a torn trailing line is skipped, mirroring
    the checkpoint loader's crash tolerance."""
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return events


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds * 1e6:.0f}us"


def _format_bytes(count: int) -> str:
    mb = count / (1024 * 1024)
    if mb >= 1024:
        return f"{mb / 1024:.1f}GB"
    if mb >= 1:
        return f"{mb:.1f}MB"
    return f"{count / 1024:.1f}KB"


def _span_line(event: Dict[str, Any], depth: int) -> str:
    attrs = event.get("attrs") or {}
    parts = [f"{k}={v}" for k, v in attrs.items()]
    timing = (
        f"wall {_format_seconds(event.get('wall_s', 0.0))}"
        f" cpu {_format_seconds(event.get('cpu_s', 0.0))}"
    )
    peak = event.get("peak_bytes")
    if peak is not None:
        timing += f" peak {_format_bytes(peak)}"
    head = "  " * depth + event.get("name", "?")
    if parts:
        head += " " + " ".join(parts)
    line = f"{head}  [{timing}]"
    if event.get("status") == "error":
        line += f"  ERROR: {event.get('error', '?')}"
    return line


def render_trace(events: List[Dict[str, Any]]) -> str:
    """Render a loaded trace as an indented span tree plus metrics.

    Spans are keyed ``(pid, span_id)``; a span whose parent is absent
    (a forked worker whose parent span lives in another process, or a
    trace truncated by a kill) renders as a root.
    """
    spans = [e for e in events if e.get("type") == "span"]
    metrics = [e for e in events if e.get("type") == "metrics"]
    by_key: Dict[Tuple[Any, Any], Dict[str, Any]] = {
        (e.get("pid"), e.get("span_id")): e for e in spans
    }
    children: Dict[Optional[Tuple[Any, Any]], List[Dict[str, Any]]] = {}
    for event in spans:
        parent = event.get("parent_id")
        key = (event.get("pid"), parent)
        resolved = key if parent is not None and key in by_key else None
        children.setdefault(resolved, []).append(event)
    for siblings in children.values():
        # (start_unix, pid, span_id): pid breaks cross-process ties at
        # the root level so multi-process traces render identically no
        # matter which worker's lines landed in the file first.
        siblings.sort(
            key=lambda e: (
                e.get("start_unix", 0.0),
                e.get("pid") or 0,
                e.get("span_id", 0),
            )
        )

    errors = sum(1 for e in spans if e.get("status") == "error")
    pids = {e.get("pid") for e in spans}
    threads = {(e.get("pid"), e.get("thread")) for e in spans}
    lines = [
        f"trace: {len(spans)} spans, {len(pids)} process(es), "
        f"{len(threads)} thread(s), {errors} error(s)"
    ]

    def walk(event: Dict[str, Any], depth: int) -> None:
        lines.append(_span_line(event, depth))
        key = (event.get("pid"), event.get("span_id"))
        for child in children.get(key, []):
            walk(child, depth + 1)

    for root in children.get(None, []):
        walk(root, 0)

    if metrics:
        counters, gauges, histograms = merge_metrics_events(metrics)
        if counters:
            lines.append("counters:")
            for name in sorted(counters):
                lines.append(f"  {name} = {counters[name]}")
        if gauges:
            lines.append("gauges:")
            for name in sorted(gauges):
                lines.append(f"  {name} = {gauges[name]}")
        if histograms:
            lines.append("histograms:")
            for name in sorted(histograms):
                histogram = histograms[name]
                quantiles = " ".join(
                    f"{label}={_format_seconds(histogram.quantile(q))}"
                    for label, q in (
                        ("p50", 0.50), ("p90", 0.90), ("p99", 0.99),
                    )
                    if histogram.quantile(q) is not None
                )
                lines.append(
                    f"  {name}: n={histogram.count} "
                    f"sum={_format_seconds(histogram.total)} {quantiles}"
                )
    return "\n".join(lines)


def merge_metrics_events(
    events: List[Dict[str, Any]],
) -> Tuple[Dict[str, int], Dict[str, float], Dict[str, Histogram]]:
    """Fold ``metrics`` events into one fleet view.

    Counters and histograms are per-process cumulative snapshots, so
    the *last* event per pid is the process total and pids sum/merge;
    gauges are last-write-wins in event order.
    """
    last_by_pid: Dict[Any, Dict[str, Any]] = {}
    gauges: Dict[str, float] = {}
    for event in events:
        if event.get("type") != "metrics":
            continue
        last_by_pid[event.get("pid")] = event
        gauges.update(event.get("gauges") or {})
    counters: Dict[str, int] = {}
    histograms: Dict[str, Histogram] = {}
    for event in last_by_pid.values():
        for name, value in (event.get("counters") or {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, state in (event.get("histograms") or {}).items():
            merged = histograms.setdefault(name, Histogram())
            merged.merge(Histogram.from_state(state))
    return counters, gauges, histograms
