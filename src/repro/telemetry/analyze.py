"""Trace analytics: profiles, critical paths, and trace diffing.

PR 6 made every layer emit spans; this module turns a JSONL trace
into *answers*:

* :func:`profile_trace` — per-span-name aggregation: count, total and
  **self** wall time (total minus the time attributed to child
  spans), CPU time, tracemalloc peaks, and exact wall-time
  percentiles (the trace retains every sample, so no bucketing error
  here), plus the merged fleet counters/gauges/histograms.
* :func:`critical_path` — the chain of spans you would have to speed
  up to make the run faster: from the longest root, repeatedly
  descend into the child that consumed the most wall time.
* :func:`diff_traces` — compare a current trace against a baseline
  per span name, **host-normalized** by the ``calibrate`` span each
  traced run emits (a fixed CPU workload timed at trace start), so a
  baseline recorded on a fast CI machine is comparable to a rerun on
  a slow one.  A policy dict (typically loaded from a JSON file)
  sets the regression threshold, per-span overrides, structural
  requirements (spans/counters that must exist), and error handling
  — making one ``repro trace diff --check`` invocation the single CI
  perf/structure guard.

The CLI surfaces these as ``repro trace FILE --profile [--json]``
and ``repro trace diff BASE CURRENT [--check --policy P.json]``;
:mod:`benchmarks.ledger` writes the same profile shape into
``BENCH_history.jsonl`` rows.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.telemetry import (
    Telemetry,
    _format_seconds,
    merge_metrics_events,
    resolve,
)

#: Name of the hardware-calibration span every traced run emits.
CALIBRATION_SPAN = "calibrate"

#: Inner loop size of one calibration pass (~5-15ms of pure-python
#: integer work on current hardware; deterministic, allocation-free).
CALIBRATION_ITERATIONS = 120_000

#: Default policy for :func:`diff_traces`; a policy file overrides
#: any subset of these keys.
DEFAULT_POLICY: Dict[str, Any] = {
    # A span name regresses when its normalized total-wall ratio
    # (current/base, divided by the calibration factor) exceeds this.
    "max_ratio": 2.0,
    # Span names whose wall total is below this in the *baseline* are
    # never flagged — micro-spans are noise-dominated.
    "min_wall_s": 0.01,
    # Normalize by the calibrate spans when both traces carry one.
    "calibrate": True,
    # Per-span-name overrides: {"sweep": {"max_ratio": 1.5}}.
    "per_span": {},
    # Structural guard: spans that must appear / counters that must be
    # positive in the *current* trace (replaces check_trace.py).
    "require_spans": [],
    "require_counters": [],
    # Spans with status="error" fail the check unless allowed.
    "allow_errors": False,
    # Span names excluded from ratio checks entirely.
    "ignore": [CALIBRATION_SPAN],
}


# ----------------------------------------------------------------------
# Hardware calibration
# ----------------------------------------------------------------------

def _calibration_pass() -> int:
    total = 0
    for i in range(CALIBRATION_ITERATIONS):
        total += i * i
    return total


def run_calibration(
    telemetry: Optional[Telemetry] = None, passes: int = 3
) -> float:
    """Time the fixed calibration workload; emit a ``calibrate`` span.

    Returns the best-of-``passes`` seconds for one pass — the host
    speed unit :func:`diff_traces` normalizes by.  The span's
    ``pass_s`` attribute carries the same figure into the trace.
    """
    registry = resolve(telemetry)
    with registry.span(CALIBRATION_SPAN, passes=passes) as span:
        best = float("inf")
        for _ in range(max(1, passes)):
            started = time.perf_counter()
            _calibration_pass()
            best = min(best, time.perf_counter() - started)
        span.annotate(pass_s=best, iterations=CALIBRATION_ITERATIONS)
    return best


def _calibration_of(events: Sequence[Dict[str, Any]]) -> Optional[float]:
    """The per-pass calibration seconds recorded in a trace (best of
    all ``calibrate`` spans, e.g. one per process)."""
    best: Optional[float] = None
    for event in events:
        if (
            event.get("type") == "span"
            and event.get("name") == CALIBRATION_SPAN
        ):
            attrs = event.get("attrs") or {}
            pass_s = attrs.get("pass_s")
            if pass_s is None:
                passes = max(1, int(attrs.get("passes", 1) or 1))
                pass_s = event.get("wall_s", 0.0) / passes
            if pass_s and (best is None or pass_s < best):
                best = float(pass_s)
    return best


# ----------------------------------------------------------------------
# Span tree + profile
# ----------------------------------------------------------------------

def build_span_tree(
    events: Sequence[Dict[str, Any]],
) -> Tuple[
    Dict[Tuple[Any, Any], Dict[str, Any]],
    Dict[Optional[Tuple[Any, Any]], List[Dict[str, Any]]],
]:
    """Key spans by ``(pid, span_id)`` and group children per parent.

    Mirrors the renderer's tree construction (absent parents root the
    span) with the same deterministic ``(start, pid, id)`` ordering.
    """
    spans = [e for e in events if e.get("type") == "span"]
    by_key = {(e.get("pid"), e.get("span_id")): e for e in spans}
    children: Dict[Optional[Tuple[Any, Any]], List[Dict[str, Any]]] = {}
    for event in spans:
        parent = event.get("parent_id")
        key = (event.get("pid"), parent)
        resolved_key = key if parent is not None and key in by_key else None
        children.setdefault(resolved_key, []).append(event)
    for siblings in children.values():
        siblings.sort(
            key=lambda e: (
                e.get("start_unix", 0.0),
                e.get("pid") or 0,
                e.get("span_id", 0),
            )
        )
    return by_key, children


def _percentile(sorted_values: List[float], q: float) -> float:
    """Exact linear-interpolation percentile of a sorted sample."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = q * (len(sorted_values) - 1)
    low = int(position)
    high = min(low + 1, len(sorted_values) - 1)
    fraction = position - low
    return sorted_values[low] * (1 - fraction) + sorted_values[high] * fraction


def profile_trace(events: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate a trace into a per-span-name profile + fleet metrics."""
    by_key, children = build_span_tree(events)
    spans = list(by_key.values())

    walls: Dict[str, List[float]] = {}
    aggregate: Dict[str, Dict[str, Any]] = {}
    for event in spans:
        name = event.get("name", "?")
        entry = aggregate.setdefault(
            name,
            {
                "count": 0,
                "errors": 0,
                "wall_total_s": 0.0,
                "wall_self_s": 0.0,
                "cpu_total_s": 0.0,
                "peak_bytes_max": None,
            },
        )
        wall = float(event.get("wall_s", 0.0))
        entry["count"] += 1
        entry["wall_total_s"] += wall
        entry["cpu_total_s"] += float(event.get("cpu_s", 0.0))
        if event.get("status") == "error":
            entry["errors"] += 1
        peak = event.get("peak_bytes")
        if peak is not None:
            previous = entry["peak_bytes_max"]
            entry["peak_bytes_max"] = (
                peak if previous is None else max(previous, peak)
            )
        walls.setdefault(name, []).append(wall)
        # Self time: this span's wall minus its direct children's.
        key = (event.get("pid"), event.get("span_id"))
        child_wall = sum(
            float(child.get("wall_s", 0.0))
            for child in children.get(key, ())
        )
        entry["wall_self_s"] += max(0.0, wall - child_wall)

    for name, entry in aggregate.items():
        series = sorted(walls[name])
        entry["wall_p50_s"] = _percentile(series, 0.50)
        entry["wall_p90_s"] = _percentile(series, 0.90)
        entry["wall_p99_s"] = _percentile(series, 0.99)
        entry["wall_max_s"] = series[-1]

    counters, gauges, histograms = merge_metrics_events(
        [e for e in events if e.get("type") == "metrics"]
    )
    return {
        "spans": aggregate,
        "spans_total": len(spans),
        "processes": len({e.get("pid") for e in spans}),
        "errors": sum(entry["errors"] for entry in aggregate.values()),
        "counters": counters,
        "gauges": gauges,
        "histograms": {
            name: histogram.state() for name, histogram in histograms.items()
        },
        "calibration_s": _calibration_of(events),
    }


def critical_path(events: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """The heaviest root-to-leaf chain of the span tree.

    From the longest root, repeatedly descend into the child with the
    largest wall time; each step reports its wall and self time — the
    list answers "what do I optimize first".
    """
    by_key, children = build_span_tree(events)
    roots = children.get(None, [])
    if not roots:
        return []
    current = max(roots, key=lambda e: float(e.get("wall_s", 0.0)))
    path: List[Dict[str, Any]] = []
    depth = 0
    while current is not None:
        key = (current.get("pid"), current.get("span_id"))
        kids = children.get(key, [])
        child_wall = sum(float(c.get("wall_s", 0.0)) for c in kids)
        wall = float(current.get("wall_s", 0.0))
        path.append(
            {
                "name": current.get("name", "?"),
                "depth": depth,
                "pid": current.get("pid"),
                "span_id": current.get("span_id"),
                "wall_s": wall,
                "self_s": max(0.0, wall - child_wall),
                "attrs": current.get("attrs") or {},
            }
        )
        current = (
            max(kids, key=lambda e: float(e.get("wall_s", 0.0)))
            if kids
            else None
        )
        depth += 1
    return path


# ----------------------------------------------------------------------
# Structural check + diff
# ----------------------------------------------------------------------

def _merge_policy(policy: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    merged = dict(DEFAULT_POLICY)
    merged["per_span"] = dict(DEFAULT_POLICY["per_span"])
    if policy:
        for key, value in policy.items():
            if key == "per_span":
                merged["per_span"].update(value or {})
            else:
                merged[key] = value
    return merged


def check_trace(
    events: Sequence[Dict[str, Any]],
    policy: Optional[Dict[str, Any]] = None,
) -> List[str]:
    """Structural guard on one trace; returns failure strings.

    Checks the policy's ``require_spans`` (each must appear at least
    once), ``require_counters`` (positive in the merged fleet
    counters), and — unless ``allow_errors`` — that no span ended
    with ``status="error"``.
    """
    rules = _merge_policy(policy)
    spans = [e for e in events if e.get("type") == "span"]
    names: Dict[str, int] = {}
    for event in spans:
        names[event.get("name", "?")] = names.get(event.get("name", "?"), 0) + 1
    failures = []
    if not spans:
        failures.append("trace contains no span events")
    for name in rules["require_spans"]:
        if not names.get(name):
            failures.append(f"required span {name!r} never appeared")
    if rules["require_counters"]:
        counters, _, _ = merge_metrics_events(
            [e for e in events if e.get("type") == "metrics"]
        )
        for name in rules["require_counters"]:
            if counters.get(name, 0) <= 0:
                failures.append(
                    f"counter {name!r} is {counters.get(name, 0)} in the "
                    f"merged metrics"
                )
    if not rules["allow_errors"]:
        errors = [e for e in spans if e.get("status") == "error"]
        if errors:
            first = errors[0]
            failures.append(
                f"{len(errors)} span(s) ended with status=error, e.g. "
                f"{first.get('name')!r}: {first.get('error')!r}"
            )
    return failures


def diff_traces(
    base_events: Sequence[Dict[str, Any]],
    current_events: Sequence[Dict[str, Any]],
    policy: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Compare two traces per span name, host-normalized.

    Returns a report dict; ``report["ok"]`` is the single verdict the
    CI guard exits on.  Wall-total ratios are divided by the
    calibration factor (current host speed / baseline host speed), so
    only *relative* slowdowns of the workload itself flag.
    """
    rules = _merge_policy(policy)
    base_profile = profile_trace(base_events)
    current_profile = profile_trace(current_events)

    base_cal = base_profile["calibration_s"]
    current_cal = current_profile["calibration_s"]
    factor = 1.0
    if rules["calibrate"] and base_cal and current_cal:
        factor = current_cal / base_cal

    ignored = set(rules["ignore"])
    spans: Dict[str, Dict[str, Any]] = {}
    regressions: List[str] = []
    all_names = set(base_profile["spans"]) | set(current_profile["spans"])
    for name in sorted(all_names):
        base_entry = base_profile["spans"].get(name)
        current_entry = current_profile["spans"].get(name)
        per_span = rules["per_span"].get(name, {})
        max_ratio = float(per_span.get("max_ratio", rules["max_ratio"]))
        min_wall = float(per_span.get("min_wall_s", rules["min_wall_s"]))
        row: Dict[str, Any] = {
            "base_wall_s": base_entry["wall_total_s"] if base_entry else None,
            "current_wall_s": (
                current_entry["wall_total_s"] if current_entry else None
            ),
            "base_count": base_entry["count"] if base_entry else 0,
            "current_count": current_entry["count"] if current_entry else 0,
            "max_ratio": max_ratio,
        }
        if base_entry is None:
            row["status"] = "new"
        elif current_entry is None:
            row["status"] = "gone"
        else:
            raw = current_entry["wall_total_s"] / max(
                base_entry["wall_total_s"], 1e-9
            )
            normalized = raw / max(factor, 1e-9)
            row["raw_ratio"] = round(raw, 4)
            row["ratio"] = round(normalized, 4)
            checkable = (
                name not in ignored
                and base_entry["wall_total_s"] >= min_wall
            )
            if checkable and normalized > max_ratio:
                row["status"] = "regression"
                regressions.append(name)
            else:
                row["status"] = "ok"
        spans[name] = row

    failures = check_trace(current_events, rules)
    return {
        "ok": not regressions and not failures,
        "calibration": {
            "base_s": base_cal,
            "current_s": current_cal,
            "factor": round(factor, 4),
        },
        "spans": spans,
        "regressions": regressions,
        "failures": failures,
        "policy": {
            key: rules[key]
            for key in ("max_ratio", "min_wall_s", "calibrate")
        },
    }


# ----------------------------------------------------------------------
# Text rendering (the CLI's --profile / diff output)
# ----------------------------------------------------------------------

def format_profile(
    profile: Dict[str, Any],
    path: Optional[List[Dict[str, Any]]] = None,
) -> str:
    """Human-readable profile table + critical path."""
    lines = [
        f"profile: {profile['spans_total']} spans, "
        f"{profile['processes']} process(es), "
        f"{profile['errors']} error(s)"
        + (
            f", calibration {_format_seconds(profile['calibration_s'])}/pass"
            if profile.get("calibration_s")
            else ""
        )
    ]
    header = (
        f"{'span':<20} {'count':>6} {'total':>9} {'self':>9} "
        f"{'p50':>8} {'p99':>8} {'cpu':>9} {'peak':>8}"
    )
    lines.append(header)
    entries = sorted(
        profile["spans"].items(),
        key=lambda item: item[1]["wall_total_s"],
        reverse=True,
    )
    for name, entry in entries:
        peak = entry.get("peak_bytes_max")
        peak_text = f"{peak / (1024 * 1024):.1f}MB" if peak else "-"
        lines.append(
            f"{name:<20} {entry['count']:>6} "
            f"{_format_seconds(entry['wall_total_s']):>9} "
            f"{_format_seconds(entry['wall_self_s']):>9} "
            f"{_format_seconds(entry['wall_p50_s']):>8} "
            f"{_format_seconds(entry['wall_p99_s']):>8} "
            f"{_format_seconds(entry['cpu_total_s']):>9} "
            f"{peak_text:>8}"
        )
    if path:
        lines.append("critical path:")
        total = path[0]["wall_s"] or 1e-9
        for step in path:
            share = 100.0 * step["wall_s"] / total
            lines.append(
                "  " * step["depth"]
                + f"{step['name']}  "
                f"[wall {_format_seconds(step['wall_s'])} "
                f"self {_format_seconds(step['self_s'])} "
                f"{share:.0f}%]"
            )
    return "\n".join(lines)


def format_diff(report: Dict[str, Any]) -> str:
    """Human-readable diff verdict table."""
    calibration = report["calibration"]
    lines = []
    if calibration["base_s"] and calibration["current_s"]:
        lines.append(
            f"calibration: base "
            f"{_format_seconds(calibration['base_s'])}/pass, current "
            f"{_format_seconds(calibration['current_s'])}/pass "
            f"(factor {calibration['factor']}x)"
        )
    else:
        lines.append("calibration: absent; ratios are raw wall time")
    lines.append(
        f"{'span':<20} {'base':>9} {'current':>9} {'ratio':>7} "
        f"{'allowed':>8}  status"
    )

    def sort_key(item):
        row = item[1]
        return -(row.get("ratio") or 0.0)

    for name, row in sorted(report["spans"].items(), key=sort_key):
        base = row["base_wall_s"]
        current = row["current_wall_s"]
        lines.append(
            f"{name:<20} "
            f"{_format_seconds(base) if base is not None else '-':>9} "
            f"{_format_seconds(current) if current is not None else '-':>9} "
            f"{row.get('ratio', '-'):>7} "
            f"{row['max_ratio']:>7}x  {row['status']}"
        )
    for failure in report["failures"]:
        lines.append(f"FAIL: {failure}")
    for name in report["regressions"]:
        lines.append(f"FAIL: span {name!r} regressed beyond policy")
    lines.append("trace diff: " + ("OK" if report["ok"] else "REGRESSED"))
    return "\n".join(lines)
